// Package obs is the repository's instrumentation layer: hierarchical
// spans with wall-clock timing and per-span counters, a process-wide
// registry of named counters, an NDJSON event sink for machine-readable
// traces, a throttled human progress renderer, and a shared command-line
// flag bundle (-trace / -v / -cpuprofile) so every cmd/* tool exposes
// the same observability surface.
//
// The package is dependency-free (standard library only) and designed
// so that the disabled path costs nothing measurable: every Span method
// is a no-op on a nil receiver, sinks are checked for nil at emission
// sites, and registry counters are single atomic adds behind cached
// handles. Heavy loops (fault simulation segments, PODEM runs, greedy
// covering passes) therefore instrument unconditionally and let the
// configuration decide whether anything is recorded.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Event types emitted by this repository. The NDJSON schema is one JSON
// object per line with at least the keys "t" (seconds since the sink
// was opened), "type" and "name"; remaining keys are event-specific
// payload fields.
const (
	// EventSpanStart marks a span opening.
	EventSpanStart = "span_start"
	// EventSpanEnd marks a span closing; carries "seconds" plus the
	// span's accumulated counters.
	EventSpanEnd = "span_end"
	// EventProgress is a throttleable progress sample; carries "done"
	// and (when known) "total" so renderers can compute rate and ETA.
	EventProgress = "progress"
	// EventSegment is a fault-simulation segment boundary record.
	EventSegment = "segment"
	// EventPhase is a discrete algorithm step (a greedy pick, a Phase-2
	// column resolution, an ATPG fault verdict).
	EventPhase = "phase"
	// EventCounters is a registry snapshot.
	EventCounters = "counters"
	// EventSummary is a final machine-readable run summary.
	EventSummary = "summary"
)

// Event is one structured telemetry record.
type Event struct {
	// T is the emission time in seconds relative to the receiving
	// sink's epoch. Emitters normally leave it zero and let the sink
	// stamp it, so call sites need no clock plumbing.
	T float64
	// Type is one of the Event* constants (or a consumer-defined type).
	Type string
	// Name is the hierarchical span/event name, "/"-separated.
	Name string
	// Trace is the campaign trace ID this event belongs to, empty for
	// untraced events. NDJSON sinks serialize it as "trace"; WithTrace
	// stamps it on every event passing through a sink.
	Trace string
	// Fields is the event payload. Values must be JSON-encodable.
	Fields map[string]any
}

// Sink consumes events. Implementations must be safe for concurrent
// use; Emit must not retain the Fields map.
type Sink interface {
	Emit(Event)
}

// Emit sends an event to the sink, tolerating a nil sink. This is the
// form instrumented code should use.
func Emit(s Sink, ev Event) {
	if s != nil {
		s.Emit(ev)
	}
}

// NullSink discards every event.
type NullSink struct{}

// Emit discards the event.
func (NullSink) Emit(Event) {}

// MultiSink fans an event out to several sinks.
type MultiSink []Sink

// Emit forwards the event to each non-nil sink in order.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(ev)
		}
	}
}

// Combine returns a sink fanning out to all non-nil arguments: nil when
// none remain, the sink itself when exactly one does.
func Combine(sinks ...Sink) Sink {
	var live MultiSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Span is a named region of work. It records wall time between New/Child
// and End, accumulates named counters, and emits span_start/span_end
// events (plus any intermediate events the caller reports through it).
// All methods are no-ops on a nil *Span, so call sites never need a
// guard: disabled instrumentation is a nil receiver check per call.
type Span struct {
	sink  Sink
	name  string
	start time.Time

	mu       sync.Mutex
	counters map[string]int64
	ended    bool
}

// NewSpan opens a root span emitting to sink. A nil sink yields a nil
// span (every method on which is a no-op).
func NewSpan(sink Sink, name string) *Span {
	if sink == nil {
		return nil
	}
	s := &Span{sink: sink, name: name, start: time.Now()}
	sink.Emit(Event{Type: EventSpanStart, Name: name})
	return s
}

// Child opens a sub-span named parent/name.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return NewSpan(s.sink, s.name+"/"+name)
}

// Name returns the span's hierarchical name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Sink returns the span's sink (nil for nil spans), letting
// span-carrying code hand the raw sink to layers that take one.
func (s *Span) Sink() Sink {
	if s == nil {
		return nil
	}
	return s.sink
}

// Add accumulates a named counter on the span. The counters are
// attached to the span_end event.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[counter] += delta
	s.mu.Unlock()
}

// Event emits an intermediate event under the span's name. The fields
// map is copied by value semantics of emission ordering only — callers
// must not mutate it concurrently with Event.
func (s *Span) Event(typ string, fields map[string]any) {
	if s == nil {
		return
	}
	s.sink.Emit(Event{Type: typ, Name: s.name, Fields: fields})
}

// EventNamed emits an intermediate event under name span/name.
func (s *Span) EventNamed(typ, name string, fields map[string]any) {
	if s == nil {
		return
	}
	s.sink.Emit(Event{Type: typ, Name: s.name + "/" + name, Fields: fields})
}

// Elapsed returns the time since the span started (0 for nil spans).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End closes the span, emitting span_end with the elapsed seconds and
// the accumulated counters. Ending twice emits once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	fields := map[string]any{"seconds": time.Since(s.start).Seconds()}
	for _, k := range sortedKeys(s.counters) {
		fields[k] = s.counters[k]
	}
	s.mu.Unlock()
	s.sink.Emit(Event{Type: EventSpanEnd, Name: s.name, Fields: fields})
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
