package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a cached handle to one named registry counter. Adds are a
// single atomic operation, cheap enough for per-segment and per-run
// accounting in hot loops (cache the handle in a package variable; do
// not call Registry.Counter per iteration).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe; a no-op while metrics are
// disarmed (SetArmed(false)).
func (c *Counter) Add(delta int64) {
	if c != nil && !disarmed.Load() {
		c.v.Add(delta)
	}
}

// Set stores an absolute value (gauge semantics). Nil-safe.
func (c *Counter) Set(v int64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Load returns the current value (0 for nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a process-wide table of named counters and gauges:
// vectors simulated, faults dropped, PODEM backtracks and aborts, LFSR
// reseeds, greedy-cover iterations, and whatever later subsystems add.
// Lookup is mutex-guarded; mutation through Counter handles is atomic.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns (creating if needed) the handle for a named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments a named counter (convenience for cold paths).
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Set stores a gauge value.
func (r *Registry) Set(name string, v int64) { r.Counter(name).Set(v) }

// Snapshot returns a copy of every counter's current value.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter and every family child (tests and
// repeated in-process runs). Family schemas and children survive —
// only their values are cleared.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Set(0)
	}
	for _, f := range r.families {
		f.mu.RLock()
		for _, ch := range f.children {
			ch.counter.Set(0)
			ch.gauge.Set(0)
			if ch.hist != nil {
				ch.hist.reset()
			}
		}
		f.mu.RUnlock()
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the internal packages
// report through.
func Default() *Registry { return defaultRegistry }

// Add increments a named counter on the default registry.
func Add(name string, delta int64) { defaultRegistry.Add(name, delta) }
