package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Renderer is the human-facing -v sink: progress and segment events are
// rendered as a single rewriting status line with rate and ETA,
// throttled to roughly one update per second; span ends and summaries
// print as permanent lines. It is safe for concurrent use.
type Renderer struct {
	mu sync.Mutex
	w  io.Writer
	// MinPeriod is the minimum interval between progress repaints
	// (default 1s; tests set 0).
	minPeriod time.Duration
	now       func() time.Time

	last     time.Time
	lineLen  int
	rates    map[string]*rateState
	haveLine bool
}

type rateState struct {
	first     time.Time
	firstDone float64
}

// NewRenderer returns a renderer writing to w with a ~1 Hz repaint rate.
func NewRenderer(w io.Writer) *Renderer {
	return &Renderer{w: w, minPeriod: time.Second, now: time.Now, rates: map[string]*rateState{}}
}

// SetMinPeriod overrides the repaint throttle (0 disables throttling).
func (r *Renderer) SetMinPeriod(d time.Duration) {
	r.mu.Lock()
	r.minPeriod = d
	r.mu.Unlock()
}

// Emit renders one event.
func (r *Renderer) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch ev.Type {
	case EventProgress, EventSegment:
		r.progress(ev)
	case EventSpanEnd:
		secs, _ := numField(ev.Fields, "seconds")
		r.println(fmt.Sprintf("%-24s done in %s%s", ev.Name,
			time.Duration(secs*float64(time.Second)).Round(time.Millisecond),
			counterSuffix(ev.Fields)))
	case EventSummary:
		r.println(fmt.Sprintf("%-24s %s", ev.Name+" summary:", fieldList(ev.Fields)))
	case EventCounters:
		r.println(fmt.Sprintf("%-24s %s", ev.Name+":", fieldList(ev.Fields)))
	}
}

// progress paints the rewriting status line with percentage, rate and
// ETA derived from "done"/"total" fields, at most once per MinPeriod.
func (r *Renderer) progress(ev Event) {
	now := r.now()
	done, haveDone := numField(ev.Fields, "done")
	total, haveTotal := numField(ev.Fields, "total")
	final := haveDone && haveTotal && done >= total
	if !final && r.minPeriod > 0 && now.Sub(r.last) < r.minPeriod {
		return
	}
	r.last = now

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s", ev.Name)
	if haveDone {
		st := r.rates[ev.Name]
		if st == nil {
			st = &rateState{first: now, firstDone: done}
			r.rates[ev.Name] = st
		}
		if haveTotal && total > 0 {
			fmt.Fprintf(&sb, "  %3.0f%%  %.0f/%.0f", 100*done/total, done, total)
		} else {
			fmt.Fprintf(&sb, "  %.0f", done)
		}
		if dt := now.Sub(st.first).Seconds(); dt > 0 && done > st.firstDone {
			rate := (done - st.firstDone) / dt
			fmt.Fprintf(&sb, "  %s/s", humanRate(rate))
			if haveTotal && rate > 0 && total > done {
				eta := time.Duration((total - done) / rate * float64(time.Second))
				fmt.Fprintf(&sb, "  ETA %s", eta.Round(time.Second))
			}
		}
	}
	if extra := progressExtras(ev.Fields); extra != "" {
		sb.WriteString("  ")
		sb.WriteString(extra)
	}
	r.paint(sb.String(), final)
}

// paint rewrites the status line in place (padding over any longer
// previous paint); final lines are committed with a newline.
func (r *Renderer) paint(line string, final bool) {
	pad := ""
	if n := r.lineLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(r.w, "\r%s%s", line, pad)
	r.lineLen = len(line)
	r.haveLine = true
	if final {
		fmt.Fprintln(r.w)
		r.lineLen = 0
		r.haveLine = false
	}
}

// println commits a full line, first terminating any in-flight status
// line so output never interleaves mid-line.
func (r *Renderer) println(line string) {
	if r.haveLine {
		fmt.Fprintln(r.w)
		r.lineLen = 0
		r.haveLine = false
	}
	fmt.Fprintln(r.w, line)
}

// progressExtras renders the small set of domain fields worth showing
// on the status line beyond done/total.
func progressExtras(fields map[string]any) string {
	var parts []string
	for _, k := range []string{"detected", "remaining", "coverage"} {
		v, ok := numField(fields, k)
		if !ok {
			continue
		}
		if k == "coverage" {
			parts = append(parts, fmt.Sprintf("cov %.2f%%", 100*v))
		} else {
			parts = append(parts, fmt.Sprintf("%s %.0f", k, v))
		}
	}
	return strings.Join(parts, "  ")
}

func counterSuffix(fields map[string]any) string {
	list := fieldListExcept(fields, "seconds")
	if list == "" {
		return ""
	}
	return "  (" + list + ")"
}

func fieldList(fields map[string]any) string { return fieldListExcept(fields, "") }

func fieldListExcept(fields map[string]any, skip string) string {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, fields[k]))
	}
	return strings.Join(parts, " ")
}

// humanRate renders a per-second rate with k/M suffixes.
func humanRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// numField extracts a numeric field regardless of the Go integer/float
// type the emitter used.
func numField(fields map[string]any, key string) (float64, bool) {
	switch v := fields[key].(type) {
	case int:
		return float64(v), true
	case int32:
		return float64(v), true
	case int64:
		return float64(v), true
	case uint64:
		return float64(v), true
	case float64:
		return v, true
	case float32:
		return float64(v), true
	}
	return 0, false
}
