package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/synth"
)

// bruteTestable exhaustively checks whether any input assignment detects
// the fault on a combinational circuit (the oracle PODEM is tested
// against). Only feasible for small input counts.
func bruteTestable(n *logic.Netlist, f fault.Fault) (bool, uint64) {
	good := logic.NewSimulator(n)
	bad := logic.NewSimulator(n)
	bad.InjectFault(f.Site, f.SA1)
	ins := n.Inputs()
	for v := uint64(0); v < 1<<uint(len(ins)); v++ {
		for i, in := range ins {
			good.SetInput(in, v>>uint(i)&1 == 1)
			bad.SetInput(in, v>>uint(i)&1 == 1)
		}
		good.Settle()
		bad.Settle()
		for _, o := range n.Outputs() {
			if good.Value(o) != bad.Value(o) {
				return true, v
			}
		}
	}
	return false, 0
}

// verifyPattern checks that the PODEM assignment really detects the
// fault (don't-care inputs tried as 0).
func verifyPattern(t *testing.T, n *logic.Netlist, f fault.Fault, assign map[logic.NetID]bool) {
	t.Helper()
	good := logic.NewSimulator(n)
	bad := logic.NewSimulator(n)
	bad.InjectFault(f.Site, f.SA1)
	for _, in := range n.Inputs() {
		v := assign[in]
		good.SetInput(in, v)
		bad.SetInput(in, v)
	}
	good.Settle()
	bad.Settle()
	for _, o := range n.Outputs() {
		if good.Value(o) != bad.Value(o) {
			return
		}
	}
	t.Fatalf("PODEM pattern %v does not detect %v", assign, f)
}

func buildAdder(t *testing.T) *logic.Netlist {
	t.Helper()
	b := logic.NewBuilder()
	a := b.InputBus("a", 4)
	x := b.InputBus("x", 4)
	cin := b.Input("cin")
	sum, cout := synth.Adder(b, a, x, cin)
	b.MarkOutputBus(sum, "sum")
	b.MarkOutput(cout, "cout")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPODEMAgainstBruteForceAdder(t *testing.T) {
	n := buildAdder(t)
	for _, f := range fault.AllFaults(n) {
		res := Generate(n, f, Options{MaxBacktracks: 5000})
		want, _ := bruteTestable(n, f)
		switch res.Status {
		case Detected:
			if !want {
				t.Fatalf("fault %v: PODEM claims detected, brute force says untestable", f)
			}
			verifyPattern(t, n, f, res.Assignment)
		case Untestable:
			if want {
				t.Fatalf("fault %v: PODEM claims untestable, brute force found a test", f)
			}
		case Aborted:
			t.Logf("fault %v aborted after %d backtracks", f, res.Backtracks)
		}
	}
}

func TestPODEMStatsNonZero(t *testing.T) {
	n := buildAdder(t)
	var agg Stats
	detected := 0
	for _, f := range fault.AllFaults(n) {
		res := Generate(n, f, Options{MaxBacktracks: 5000})
		if res.Stats.Implications == 0 {
			t.Fatalf("fault %v: zero implications (imply always runs at least once)", f)
		}
		if res.Backtracks != res.Stats.Backtracks {
			t.Fatalf("fault %v: legacy Backtracks %d != Stats.Backtracks %d",
				f, res.Backtracks, res.Stats.Backtracks)
		}
		if res.Status == Detected {
			detected++
		}
		agg.Merge(res.Stats)
	}
	if detected == 0 {
		t.Fatal("fixture detects nothing")
	}
	// Across the whole campaign the search cannot be free: finding
	// tests requires decisions, and the adder has redundancy-free cones
	// deep enough that some exploration backtracks.
	if agg.Decisions == 0 {
		t.Error("campaign made zero decisions")
	}
	if agg.Backtracks == 0 {
		t.Error("campaign made zero backtracks")
	}
	if agg.Implications <= agg.Decisions {
		t.Errorf("implications (%d) must exceed decisions (%d): one per decision plus the initial pass",
			agg.Implications, agg.Decisions)
	}
	if agg.Aborts != 0 {
		t.Errorf("adder campaign aborted %d runs at 5000 backtracks", agg.Aborts)
	}

	// A starved backtrack budget must surface as Stats.Aborts.
	forced := Generate(n, fault.Fault{Site: n.Outputs()[0], SA1: true}, Options{MaxBacktracks: 1})
	if forced.Status == Aborted && forced.Stats.Aborts != 1 {
		t.Errorf("aborted run has Stats.Aborts = %d", forced.Stats.Aborts)
	}
}

func TestPODEMRedundantFault(t *testing.T) {
	// y = AND(x, NOT(x)) is constantly 0: the AND output sa0 is
	// undetectable.
	b := logic.NewBuilder()
	x := b.Input("x")
	y := b.And(x, b.Not(x))
	b.MarkOutput(y, "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := Generate(n, fault.Fault{Site: y, SA1: false}, Options{})
	if res.Status != Untestable {
		t.Fatalf("redundant fault classified %v", res.Status)
	}
	// ...while sa1 on the same net is detectable.
	res = Generate(n, fault.Fault{Site: y, SA1: true}, Options{})
	if res.Status != Detected {
		t.Fatalf("sa1 classified %v", res.Status)
	}
}

func TestPODEMWithConstraints(t *testing.T) {
	// A 2:1 mux: with sel fixed to 0, faults observable only through the
	// b-input path become untestable.
	b := logic.NewBuilder()
	sel := b.Input("sel")
	av := b.Input("a")
	bv := b.Input("b")
	bBuf := b.Buf(bv, "bpath")
	y := b.Mux2(sel, av, bBuf)
	b.MarkOutput(y, "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := fault.Fault{Site: bBuf, SA1: true}
	free := Generate(n, f, Options{})
	if free.Status != Detected {
		t.Fatalf("unconstrained: %v", free.Status)
	}
	constrained := Generate(n, f, Options{Fixed: map[logic.NetID]bool{sel: false}})
	if constrained.Status != Untestable {
		t.Fatalf("constrained sel=0: %v, want untestable", constrained.Status)
	}
}

func TestPODEMRestrictedPIs(t *testing.T) {
	// Only the a-side inputs may be assigned; a fault needing the b-side
	// becomes untestable.
	b := logic.NewBuilder()
	av := b.Input("a")
	bv := b.Input("b")
	y := b.And(av, bv)
	b.MarkOutput(y, "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := fault.Fault{Site: av, SA1: false}
	res := Generate(n, f, Options{PIs: []logic.NetID{av}})
	// Detecting a/sa0 needs b=1, which cannot be assigned: untestable.
	if res.Status != Untestable {
		t.Fatalf("restricted PIs: %v, want untestable", res.Status)
	}
}

func TestShifterConstraintShape(t *testing.T) {
	// The paper's Section 3.4 observation, reproduced in miniature: with
	// mode restricted away from "variable" (01), shifter fault coverage
	// collapses; banning left1/right1 barely matters.
	b := logic.NewBuilder()
	data := b.InputBus("d", 18)
	amt := b.InputBus("amt", 4)
	mode := b.InputBus("mode", 2)
	out := synth.BarrelShifter(b, data, amt, mode)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := fault.Collapse(n, fault.AllFaults(n))
	// Sample the fault list to keep the test quick; the experiments
	// harness runs the full-size study (E6).
	sample := faults
	if len(sample) > 120 {
		step := len(sample) / 120
		var s []fault.Fault
		for i := 0; i < len(sample); i += step {
			s = append(s, sample[i])
		}
		sample = s
	}
	countTestable := func(allowedModes []uint64) int {
		testable := 0
		for _, f := range sample {
			ok := false
			for _, m := range allowedModes {
				fixed := map[logic.NetID]bool{
					mode[0]: m&1 == 1,
					mode[1]: m&2 == 2,
				}
				res := Generate(n, f, Options{Fixed: fixed, MaxBacktracks: 600})
				if res.Status == Detected {
					ok = true
					break
				}
			}
			if ok {
				testable++
			}
		}
		return testable
	}
	all := countTestable([]uint64{0, 1, 2, 3})
	no01 := countTestable([]uint64{0, 2, 3})
	no10 := countTestable([]uint64{0, 1, 3})
	t.Logf("testable: all-modes=%d ban-variable=%d ban-left1=%d of %d", all, no01, no10, len(sample))
	if float64(no01) > 0.6*float64(all) {
		t.Errorf("banning variable mode should collapse coverage: %d vs %d", no01, all)
	}
	if float64(no10) < 0.9*float64(all) {
		t.Errorf("banning left1 should barely matter: %d vs %d", no10, all)
	}
}

func TestUnrollShiftRegister(t *testing.T) {
	// din -> q0 -> q1 -> out: a fault on q0 needs 2 frames to reach the
	// output; 1 frame must fail, 3 frames must succeed.
	b := logic.NewBuilder()
	din := b.Input("din")
	q0 := b.DFF(din, "q0")
	q1 := b.DFF(q0, "q1")
	b.MarkOutput(q1, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := fault.Fault{Site: q0, SA1: true}

	u1, err := Unroll(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	res1 := Generate(u1.Netlist, fault.Fault{Site: u1.Sites(q0)[0], SA1: true},
		Options{ExtraSites: u1.Sites(q0)[1:]})
	if res1.Status == Detected {
		t.Fatal("1 frame cannot expose a q0 fault")
	}

	u3, err := Unroll(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	sites := u3.Sites(q0)
	res3 := Generate(u3.Netlist, fault.Fault{Site: sites[0], SA1: true},
		Options{ExtraSites: sites[1:]})
	if res3.Status != Detected {
		t.Fatalf("3 frames should expose q0/sa1: %v", res3.Status)
	}
	_ = f
}

func TestUnrollMatchesSequentialSim(t *testing.T) {
	// The unrolled circuit, fed frame-wise inputs, must equal the
	// sequential simulation of the original.
	b := logic.NewBuilder()
	in := b.InputBus("in", 3)
	acc := b.DFFBus(in, "r")
	x := b.Xor(acc[0], acc[1])
	y := b.And(x, acc[2])
	b.MarkOutput(y, "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 4
	u, err := Unroll(n, frames)
	if err != nil {
		t.Fatal(err)
	}
	seq := logic.NewSimulator(n)
	unr := logic.NewSimulator(u.Netlist)
	inputs := []uint64{0b101, 0b011, 0b110, 0b001}
	var want []bool
	for _, v := range inputs {
		seq.SetInputBus(in, v)
		seq.Settle()
		want = append(want, seq.Value(n.Outputs()[0]))
		seq.Step()
	}
	for f, v := range inputs {
		for i, id := range u.InputAt[f] {
			unr.SetInput(id, v>>uint(i)&1 == 1)
		}
	}
	unr.Settle()
	for f := range inputs {
		if got := unr.Value(u.OutputAt[f][0]); got != want[f] {
			t.Fatalf("frame %d: unrolled %v, sequential %v", f, got, want[f])
		}
	}
}
