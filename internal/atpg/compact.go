package atpg

import "repro/internal/logic"

// Cube is a partial input assignment (a test cube): PIs absent from the
// map are don't-cares. PODEM's Result.Assignment is a Cube.
type Cube map[logic.NetID]bool

// Compatible reports whether two cubes agree on every PI both assign —
// the condition under which one merged test can serve both.
func (c Cube) Compatible(d Cube) bool {
	// Iterate over the smaller map.
	if len(d) < len(c) {
		c, d = d, c
	}
	for pi, v := range c {
		if w, ok := d[pi]; ok && w != v {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible cubes.
func (c Cube) Merge(d Cube) Cube {
	out := make(Cube, len(c)+len(d))
	for pi, v := range c {
		out[pi] = v
	}
	for pi, v := range d {
		out[pi] = v
	}
	return out
}

// CompactCubes performs greedy static compaction: cubes are merged into
// the first compatible slot, first-fit over the list — the standard way
// a full-scan test set shrinks after per-fault ATPG. Returns the merged
// cubes and, for each input cube, the index of the merged test serving
// it.
func CompactCubes(cubes []Cube) (merged []Cube, assignment []int) {
	assignment = make([]int, len(cubes))
	for i, cube := range cubes {
		placed := -1
		for j, slot := range merged {
			if slot.Compatible(cube) {
				merged[j] = slot.Merge(cube)
				placed = j
				break
			}
		}
		if placed < 0 {
			merged = append(merged, cube.Merge(nil))
			placed = len(merged) - 1
		}
		assignment[i] = placed
	}
	return merged, assignment
}

// FillCubes completes don't-care inputs with values from fill (e.g. an
// LFSR stream), producing concrete vectors over the given PI order.
func FillCubes(cubes []Cube, pis []logic.NetID, fill func(i int) bool) []uint64 {
	vecs := make([]uint64, len(cubes))
	draw := 0
	for ci, cube := range cubes {
		var word uint64
		for b, pi := range pis {
			v, ok := cube[pi]
			if !ok {
				v = fill(draw)
				draw++
			}
			if v {
				word |= 1 << uint(b)
			}
		}
		vecs[ci] = word
	}
	return vecs
}
