package atpg

import (
	"fmt"

	"repro/internal/logic"
)

// Unrolled is a sequential netlist expanded into a purely combinational
// circuit of k time frames: frame 0's flip-flops hold the reset state
// (constant 0), frame i>0's flip-flops take frame i−1's D values, and
// every frame's primary inputs and outputs appear separately.
type Unrolled struct {
	Netlist *logic.Netlist
	// InputAt[f][i] is the frame-f copy of original primary input i.
	InputAt [][]logic.NetID
	// OutputAt[f][o] is the frame-f copy of original primary output o.
	OutputAt [][]logic.NetID
	// NetAt[f] maps original net IDs to their frame-f copies
	// (fault-injection sites replicate across all frames).
	NetAt [][]logic.NetID
	// Frames is the unroll depth.
	Frames int
}

// Unroll expands the sequential netlist into frames combinational time
// frames. A fault on original net x corresponds to the site list
// {NetAt[0][x], ..., NetAt[k−1][x]}.
func Unroll(n *logic.Netlist, frames int) (*Unrolled, error) {
	if frames < 1 {
		return nil, fmt.Errorf("atpg: unroll depth %d < 1", frames)
	}
	b := logic.NewBuilder()
	u := &Unrolled{
		InputAt:  make([][]logic.NetID, frames),
		OutputAt: make([][]logic.NetID, frames),
		NetAt:    make([][]logic.NetID, frames),
		Frames:   frames,
	}
	// prevD[q] is the previous frame's copy of the D input net feeding
	// DFF with Q net q (original IDs).
	prevD := map[logic.NetID]logic.NetID{}
	for f := 0; f < frames; f++ {
		netAt := make([]logic.NetID, n.NumNets())
		for i := range netAt {
			netAt[i] = logic.InvalidNet
		}
		// Sources first.
		for id := 0; id < n.NumNets(); id++ {
			net := logic.NetID(id)
			switch n.Gate(net).Kind {
			case logic.GateConst0:
				netAt[net] = b.Const(false)
			case logic.GateConst1:
				netAt[net] = b.Const(true)
			case logic.GateInput:
				netAt[net] = b.Input(fmt.Sprintf("f%d_%s", f, n.NameOf(net)))
			case logic.GateDFF:
				if f == 0 {
					// Reset state: buffered constant so the net remains a
					// distinct fault site.
					netAt[net] = b.Buf(b.Const(false), fmt.Sprintf("f0_%s", n.NameOf(net)))
				} else {
					netAt[net] = b.Buf(prevD[net], fmt.Sprintf("f%d_%s", f, n.NameOf(net)))
				}
			}
		}
		// Combinational frame in topological order.
		for _, id := range n.CombOrder() {
			g := n.Gate(id)
			ins := make([]logic.NetID, len(g.In))
			for i, orig := range g.In {
				ins[i] = netAt[orig]
				if ins[i] == logic.InvalidNet {
					return nil, fmt.Errorf("atpg: frame %d: input of net %d unresolved", f, id)
				}
			}
			var out logic.NetID
			switch g.Kind {
			case logic.GateBuf:
				out = b.Buf(ins[0], "")
			case logic.GateNot:
				out = b.Not(ins[0])
			case logic.GateAnd:
				out = b.And(ins...)
			case logic.GateOr:
				out = b.Or(ins...)
			case logic.GateNand:
				out = b.Nand(ins...)
			case logic.GateNor:
				out = b.Nor(ins...)
			case logic.GateXor:
				out = b.Xor(ins...)
			case logic.GateXnor:
				out = b.Xnor(ins...)
			case logic.GateMux2:
				out = b.Mux2(ins[0], ins[1], ins[2])
			default:
				return nil, fmt.Errorf("atpg: unexpected gate kind %v", g.Kind)
			}
			netAt[id] = out
		}
		// Record this frame's D nets for the next frame's flip-flops.
		for _, q := range n.DFFs() {
			d := n.Gate(q).In[0]
			prevD[q] = netAt[d]
		}
		u.NetAt[f] = netAt
		inputs := make([]logic.NetID, len(n.Inputs()))
		for i, orig := range n.Inputs() {
			inputs[i] = netAt[orig]
		}
		u.InputAt[f] = inputs
		outputs := make([]logic.NetID, len(n.Outputs()))
		for i, orig := range n.Outputs() {
			outputs[i] = b.MarkOutput(netAt[orig], fmt.Sprintf("f%d_out%d", f, i))
		}
		u.OutputAt[f] = outputs
	}
	un, err := b.Build(logic.BuildOptions{})
	if err != nil {
		return nil, err
	}
	u.Netlist = un
	return u, nil
}

// Sites returns every frame's copy of the original fault site.
func (u *Unrolled) Sites(orig logic.NetID) []logic.NetID {
	sites := make([]logic.NetID, 0, u.Frames)
	for f := 0; f < u.Frames; f++ {
		if id := u.NetAt[f][orig]; id != logic.InvalidNet {
			sites = append(sites, id)
		}
	}
	return sites
}
