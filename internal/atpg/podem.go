// Package atpg implements combinational test pattern generation with
// the PODEM algorithm over a five-valued calculus (0, 1, X, D, D̄), plus
// bounded time-frame unrolling for sequential targets.
//
// Three consumers in this repository:
//   - the Phase-3 "random resistant patterns" top-up, which runs PODEM on
//     the core's combinational frame with the execute-stage operand
//     registers as decision inputs;
//   - the control-bit constraint study (paper Section 3.4), which runs
//     PODEM on a standalone component with its mode bits fixed;
//   - the sequential-ATPG baseline (paper Section 3.5), which unrolls the
//     core a few time frames and demonstrates why gate-level sequential
//     ATPG collapses on a pipelined core.
package atpg

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Value is the five-valued PODEM calculus. D means good-machine 1 /
// faulty-machine 0; DB the reverse.
type Value uint8

// Calculus values.
const (
	VX Value = iota
	V0
	V1
	VD
	VDB
)

// String renders the conventional symbol.
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	case VD:
		return "D"
	case VDB:
		return "D'"
	}
	return "X"
}

func (v Value) known() bool { return v == V0 || v == V1 }
func (v Value) hasD() bool  { return v == VD || v == VDB }
func (v Value) good() Value { // good-machine projection
	switch v {
	case VD:
		return V1
	case VDB:
		return V0
	}
	return v
}
func (v Value) bad() Value { // faulty-machine projection
	switch v {
	case VD:
		return V0
	case VDB:
		return V1
	}
	return v
}

func fromBool(b bool) Value {
	if b {
		return V1
	}
	return V0
}

// compose builds the composite value from good/faulty projections.
func compose(good, bad Value) Value {
	if good == VX || bad == VX {
		return VX
	}
	if good == bad {
		return good
	}
	if good == V1 {
		return VD
	}
	return VDB
}

func not(v Value) Value {
	switch v {
	case V0:
		return V1
	case V1:
		return V0
	case VD:
		return VDB
	case VDB:
		return VD
	}
	return VX
}

// andV implements five-valued AND.
func andV(a, b Value) Value {
	if a == V0 || b == V0 {
		return V0
	}
	if a == V1 {
		return b
	}
	if b == V1 {
		return a
	}
	if a == VX || b == VX {
		return VX
	}
	if a == b {
		return a
	}
	return V0 // D AND D' = 0
}

func orV(a, b Value) Value { return not(andV(not(a), not(b))) }

func xorV(a, b Value) Value {
	if a == VX || b == VX {
		return VX
	}
	return compose(xor2(a.good(), b.good()), xor2(a.bad(), b.bad()))
}

func xor2(a, b Value) Value {
	if a == b {
		return V0
	}
	return V1
}

// Status classifies a PODEM run.
type Status uint8

// Run outcomes.
const (
	// Detected: a test was found; Result.Assignment holds it.
	Detected Status = iota
	// Untestable: the search space was exhausted — no test exists under
	// the given inputs, constraints and observation points.
	Untestable
	// Aborted: the backtrack limit was hit before a conclusion.
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	}
	return "aborted"
}

// Options configure a PODEM run.
type Options struct {
	// PIs are the nets PODEM may assign. They must be sources of the
	// combinational frame (primary inputs or DFF Q nets). Empty means
	// all primary inputs.
	PIs []logic.NetID
	// Fixed pre-assigns constant values (constraints); fixed nets are
	// never decided or backtraced through.
	Fixed map[logic.NetID]bool
	// Observe lists the nets where a D/D̄ arrival counts as detection.
	// Empty means the netlist's primary outputs.
	Observe []logic.NetID
	// MaxBacktracks bounds the search (default 2000).
	MaxBacktracks int
	// ExtraSites injects the same fault at additional nets (used by
	// time-frame unrolling, where one physical fault appears once per
	// frame).
	ExtraSites []logic.NetID
}

// Stats counts the search effort of one or more PODEM runs: decisions
// (PI assignments pushed on the decision stack), backtracks (decision
// reversals, including second-value retries), aborts (runs that hit the
// backtrack limit) and implications (full five-valued re-evaluations of
// the frame). Stats add across runs with Merge, which is how callers
// like the sequential-ATPG baseline aggregate per-campaign totals.
type Stats struct {
	Decisions    int
	Backtracks   int
	Aborts       int
	Implications int
}

// Merge accumulates another run's counts.
func (s *Stats) Merge(o Stats) {
	s.Decisions += o.Decisions
	s.Backtracks += o.Backtracks
	s.Aborts += o.Aborts
	s.Implications += o.Implications
}

// Result reports a PODEM run.
type Result struct {
	Status Status
	// Assignment holds the PI values of the found test (unassigned PIs
	// are don't-cares and absent).
	Assignment map[logic.NetID]bool
	// Backtracks duplicates Stats.Backtracks (kept for callers that
	// predate Stats).
	Backtracks int
	// Stats breaks down the search effort of this run.
	Stats Stats
}

// Default-registry counters aggregated across every PODEM run in the
// process (snapshotted into traces by obs.Runtime.Close).
var (
	ctrDecisions    = obs.Default().Counter("podem.decisions")
	ctrBacktracks   = obs.Default().Counter("podem.backtracks")
	ctrAborts       = obs.Default().Counter("podem.aborts")
	ctrImplications = obs.Default().Counter("podem.implications")
	ctrRuns         = obs.Default().Counter("podem.runs")
)

type podem struct {
	n       *logic.Netlist
	vals    []Value
	isPI    []bool
	isFixed []bool
	sites   []logic.NetID
	siteSet []bool
	sa1     bool
	observe []logic.NetID
	// reach[net] reports whether an assignable PI lies in the net's
	// input cone (computed once; guides backtrace away from dead paths).
	reach     []bool
	assign    map[logic.NetID]bool
	maxBT     int
	bts       int
	decisions int
	implies   int
}

// Generate runs PODEM for one stuck-at fault.
func Generate(n *logic.Netlist, f fault.Fault, opts Options) Result {
	p := &podem{
		n:       n,
		vals:    make([]Value, n.NumNets()),
		isPI:    make([]bool, n.NumNets()),
		isFixed: make([]bool, n.NumNets()),
		siteSet: make([]bool, n.NumNets()),
		sa1:     f.SA1,
		assign:  map[logic.NetID]bool{},
		maxBT:   opts.MaxBacktracks,
	}
	if p.maxBT <= 0 {
		p.maxBT = 2000
	}
	pis := opts.PIs
	if len(pis) == 0 {
		pis = n.Inputs()
	}
	for _, pi := range pis {
		if _, fixed := opts.Fixed[pi]; !fixed {
			p.isPI[pi] = true
		}
	}
	for net, v := range opts.Fixed {
		p.isFixed[net] = true
		p.vals[net] = fromBool(v)
	}
	p.sites = append([]logic.NetID{f.Site}, opts.ExtraSites...)
	for _, s := range p.sites {
		p.siteSet[s] = true
	}
	p.observe = opts.Observe
	if len(p.observe) == 0 {
		p.observe = n.Outputs()
	}
	p.computeReach()
	p.imply()
	st := p.search()
	res := Result{
		Status:     st,
		Backtracks: p.bts,
		Stats: Stats{
			Decisions:    p.decisions,
			Backtracks:   p.bts,
			Implications: p.implies,
		},
	}
	if st == Aborted {
		res.Stats.Aborts = 1
	}
	if st == Detected {
		res.Assignment = p.assign
	}
	ctrRuns.Add(1)
	ctrDecisions.Add(int64(res.Stats.Decisions))
	ctrBacktracks.Add(int64(res.Stats.Backtracks))
	ctrImplications.Add(int64(res.Stats.Implications))
	ctrAborts.Add(int64(res.Stats.Aborts))
	return res
}

func (p *podem) computeReach() {
	p.reach = make([]bool, p.n.NumNets())
	for id := 0; id < p.n.NumNets(); id++ {
		net := logic.NetID(id)
		if p.isPI[net] {
			p.reach[net] = true
		}
	}
	for _, id := range p.n.CombOrder() {
		g := p.n.Gate(id)
		for _, in := range g.In {
			if p.reach[in] {
				p.reach[id] = true
				break
			}
		}
	}
}

// imply fully re-evaluates the frame under the current assignment,
// injecting the fault at every site.
func (p *podem) imply() {
	p.implies++
	n := p.n
	for id := 0; id < n.NumNets(); id++ {
		net := logic.NetID(id)
		var v Value
		switch n.Gate(net).Kind {
		case logic.GateConst0:
			v = V0
		case logic.GateConst1:
			v = V1
		case logic.GateInput, logic.GateDFF:
			v = VX
			if p.isFixed[net] {
				v = p.vals[net].good()
			} else if b, ok := p.assign[net]; ok {
				v = fromBool(b)
			}
		default:
			continue
		}
		p.vals[net] = p.site(net, v)
	}
	for _, id := range n.CombOrder() {
		g := n.Gate(id)
		var v Value
		switch g.Kind {
		case logic.GateBuf:
			v = p.vals[g.In[0]]
		case logic.GateNot:
			v = not(p.vals[g.In[0]])
		case logic.GateAnd, logic.GateNand:
			v = V1
			for _, in := range g.In {
				v = andV(v, p.vals[in])
			}
			if g.Kind == logic.GateNand {
				v = not(v)
			}
		case logic.GateOr, logic.GateNor:
			v = V0
			for _, in := range g.In {
				v = orV(v, p.vals[in])
			}
			if g.Kind == logic.GateNor {
				v = not(v)
			}
		case logic.GateXor, logic.GateXnor:
			v = V0
			for _, in := range g.In {
				v = xorV(v, p.vals[in])
			}
			if g.Kind == logic.GateXnor {
				v = not(v)
			}
		case logic.GateMux2:
			sel, a, b := p.vals[g.In[0]], p.vals[g.In[1]], p.vals[g.In[2]]
			v = muxV(sel, a, b)
		default:
			panic(fmt.Sprintf("atpg: unexpected gate kind %v in comb order", g.Kind))
		}
		p.vals[id] = p.site(id, v)
	}
}

// site applies fault injection: the faulty projection is forced to the
// stuck value while the good projection keeps v's good part.
func (p *podem) site(net logic.NetID, v Value) Value {
	if !p.siteSet[net] {
		return v
	}
	return compose(v.good(), fromBool(p.sa1))
}

func muxV(sel, a, b Value) Value {
	switch sel {
	case V0:
		return a
	case V1:
		return b
	case VX:
		if a == b && a.known() {
			return a
		}
		return VX
	}
	// sel carries a fault effect: project the two machines separately.
	var g, bad Value
	if sel.good() == V1 {
		g = b.good()
	} else {
		g = a.good()
	}
	if sel.bad() == V1 {
		bad = b.bad()
	} else {
		bad = a.bad()
	}
	if g == VX || bad == VX {
		return VX
	}
	return compose(g, bad)
}

func (p *podem) detected() bool {
	for _, o := range p.observe {
		if p.vals[o].hasD() {
			return true
		}
	}
	return false
}

// activated reports whether some site carries a D.
func (p *podem) activated() bool {
	for _, s := range p.sites {
		if p.vals[s].hasD() {
			return true
		}
	}
	return false
}

// activationImpossible reports whether no site can activate under the
// current assignment. After injection a site's value is either the stuck
// value (good machine agrees with the fault: known, no D), a D (good
// machine differs), or X (good machine undetermined). Activation is
// impossible exactly when every site is known — i.e. none is D or X.
func (p *podem) activationImpossible() bool {
	for _, s := range p.sites {
		if !p.vals[s].known() {
			return false
		}
	}
	return true
}

type decision struct {
	pi        logic.NetID
	value     bool
	triedBoth bool
}

func (p *podem) search() Status {
	var stack []decision
	for {
		if p.detected() {
			return Detected
		}
		obj, objVal, ok := p.objective()
		if ok {
			pi, piVal, found := p.backtrace(obj, objVal)
			if found {
				p.decisions++
				stack = append(stack, decision{pi: pi, value: piVal})
				p.assign[pi] = piVal
				p.imply()
				continue
			}
		}
		// No progress possible: backtrack.
		for {
			p.bts++
			if p.bts > p.maxBT {
				return Aborted
			}
			if len(stack) == 0 {
				return Untestable
			}
			top := &stack[len(stack)-1]
			if !top.triedBoth {
				top.triedBoth = true
				top.value = !top.value
				p.assign[top.pi] = top.value
				p.imply()
				break
			}
			delete(p.assign, top.pi)
			stack = stack[:len(stack)-1]
			p.imply()
		}
	}
}

// objective picks the next goal: activate the fault, then extend the
// D-frontier toward an observe point.
func (p *podem) objective() (logic.NetID, Value, bool) {
	if !p.activated() {
		if p.activationImpossible() {
			return 0, VX, false
		}
		for _, s := range p.sites {
			if p.vals[s] == VX {
				return s, fromBool(!p.sa1), true
			}
		}
		return 0, VX, false
	}
	// D-frontier: gate with X output and a D input, preferring gates
	// that can reach an observe point (all can, in a connected cone).
	for _, id := range p.n.CombOrder() {
		if p.vals[id] != VX {
			continue
		}
		g := p.n.Gate(id)
		hasD := false
		for _, in := range g.In {
			if p.vals[in].hasD() {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		// Pick a controllable X input and the value that unblocks
		// propagation (an X input with no assignable PI in its cone can
		// never be set, so that gate is dead for propagation).
		for pin, in := range g.In {
			if p.vals[in] != VX || !p.reach[in] {
				continue
			}
			switch g.Kind {
			case logic.GateAnd, logic.GateNand:
				return in, V1, true
			case logic.GateOr, logic.GateNor:
				return in, V0, true
			case logic.GateXor, logic.GateXnor:
				return in, V0, true
			case logic.GateMux2:
				if pin == 0 {
					// Select whichever data input carries the D.
					if p.vals[g.In[2]].hasD() {
						return in, V1, true
					}
					return in, V0, true
				}
				return in, V0, true
			default:
				return in, V0, true
			}
		}
	}
	return 0, VX, false
}

// backtrace maps an objective to an unassigned PI assignment along a
// path of X values, inverting the target value through inverting gates.
func (p *podem) backtrace(net logic.NetID, val Value) (logic.NetID, bool, bool) {
	for depth := 0; depth < p.n.NumNets(); depth++ {
		if p.isPI[net] {
			if _, done := p.assign[net]; done {
				return 0, false, false
			}
			return net, val == V1, true
		}
		g := p.n.Gate(net)
		if g.Kind == logic.GateInput || g.Kind == logic.GateDFF ||
			g.Kind == logic.GateConst0 || g.Kind == logic.GateConst1 {
			return 0, false, false // non-assignable source
		}
		// Choose an X input whose cone contains an assignable PI.
		next := logic.InvalidNet
		for _, in := range g.In {
			if p.vals[in] == VX && p.reach[in] {
				next = in
				break
			}
		}
		if next == logic.InvalidNet {
			return 0, false, false
		}
		switch g.Kind {
		case logic.GateNot, logic.GateNand, logic.GateNor:
			val = not(val)
		case logic.GateXnor:
			val = not(val)
		case logic.GateBuf, logic.GateAnd, logic.GateOr, logic.GateXor, logic.GateMux2:
			// Value preserved (heuristically, for XOR/MUX).
		}
		net = next
	}
	return 0, false, false
}
