package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
)

func TestCubeCompatibleMerge(t *testing.T) {
	a := Cube{1: true, 2: false}
	b := Cube{2: false, 3: true}
	c := Cube{1: false}
	if !a.Compatible(b) || !b.Compatible(a) {
		t.Fatal("a,b should be compatible")
	}
	if a.Compatible(c) || c.Compatible(a) {
		t.Fatal("a,c conflict on PI 1")
	}
	m := a.Merge(b)
	if len(m) != 3 || !m[1] || m[2] || !m[3] {
		t.Fatalf("merge = %v", m)
	}
	// Merge must not alias the inputs.
	m[9] = true
	if _, ok := a[9]; ok {
		t.Fatal("merge aliased input cube")
	}
}

func TestCompactCubes(t *testing.T) {
	cubes := []Cube{
		{1: true},
		{2: true},            // compatible with #0 → merges
		{1: false},           // conflicts → new slot
		{1: true, 2: true},   // compatible with slot 0
		{1: false, 3: false}, // compatible with slot 1
	}
	merged, assign := CompactCubes(cubes)
	if len(merged) != 2 {
		t.Fatalf("merged into %d slots, want 2: %v", len(merged), merged)
	}
	for i, cube := range cubes {
		slot := merged[assign[i]]
		for pi, v := range cube {
			if slot[pi] != v {
				t.Fatalf("cube %d not honored by slot %d", i, assign[i])
			}
		}
	}
}

// TestCompactionPreservesDetection generates per-fault tests for the
// adder with PODEM, compacts them, and verifies the compacted set still
// detects every originally-detected fault.
func TestCompactionPreservesDetection(t *testing.T) {
	n := buildAdder(t)
	faults, _ := fault.Collapse(n, fault.AllFaults(n))
	var cubes []Cube
	var covered []fault.Fault
	for _, f := range faults {
		res := Generate(n, f, Options{MaxBacktracks: 3000})
		if res.Status == Detected {
			cubes = append(cubes, Cube(res.Assignment))
			covered = append(covered, f)
		}
	}
	merged, _ := CompactCubes(cubes)
	if len(merged) >= len(cubes) {
		t.Fatalf("compaction did not shrink: %d -> %d", len(cubes), len(merged))
	}
	t.Logf("compaction: %d per-fault cubes -> %d tests", len(cubes), len(merged))

	vecs := FillCubes(merged, n.Inputs(), func(i int) bool { return i%3 == 0 })
	sim, err := fault.Simulate(n, fault.Vectors(vecs), fault.SimOptions{Faults: covered})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Detected() != len(covered) {
		t.Fatalf("compacted set detects %d of %d", sim.Detected(), len(covered))
	}
}

func TestFillCubes(t *testing.T) {
	b := logic.NewBuilder()
	ins := b.InputBus("in", 4)
	b.MarkOutput(b.And(ins...), "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cubes := []Cube{{ins[0]: true, ins[2]: true}}
	vecs := FillCubes(cubes, n.Inputs(), func(i int) bool { return false })
	if vecs[0] != 0b0101 {
		t.Fatalf("filled vector %04b", vecs[0])
	}
	vecs = FillCubes(cubes, n.Inputs(), func(i int) bool { return true })
	if vecs[0] != 0b1111 {
		t.Fatalf("filled vector %04b", vecs[0])
	}
}
