// Package online implements in-field periodic self-test: the deployment
// mode the paper's self-test programs exist for. Between bursts of
// functional work, the processor runs a fixed self-test burst — a
// state-normalization preamble followed by a number of template-expanded
// loop iterations — while a MISR compacts its outputs. The burst's
// signature is compared against a golden value recorded at
// characterization time; a mismatch flags the core as faulty.
//
// The normalization preamble (load zero into every register, clear both
// accumulators) makes the burst's response independent of whatever the
// functional workload left behind, so one golden signature serves for
// the lifetime of the part. Callers save and restore their own context
// around a burst, exactly as an OS would around an interrupt-driven
// test slot.
package online

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/lfsr"
	"repro/internal/selftest"
)

// Config sizes a self-test burst.
type Config struct {
	// Iterations is the number of loop iterations per burst.
	Iterations int
	// MISRWidth selects the signature width (default 16).
	MISRWidth int
	// Seed1/Seed2 fix the burst's LFSR data (defaults are fine; they
	// must simply match between characterization and field).
	Seed1, Seed2 uint64
}

// Selftest is a characterized periodic self-test: a fixed vector burst
// plus its golden signature.
type Selftest struct {
	cfg    Config
	vecs   []uint64
	golden uint64
}

// New characterizes a burst for the given self-test program: it builds
// the normalization preamble + expanded loop stream and computes the
// golden signature on a fault-free behavioral core.
func New(prog *selftest.Program, cfg Config) (*Selftest, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10
	}
	if cfg.MISRWidth == 0 {
		cfg.MISRWidth = 16
	}
	if _, err := lfsr.NewMISR(cfg.MISRWidth); err != nil {
		return nil, err
	}
	s := &Selftest{cfg: cfg}
	for _, in := range normalizationPreamble() {
		s.vecs = append(s.vecs, uint64(in.Encode()))
	}
	expanded := selftest.Expand(prog, selftest.ExpandOptions{
		Iterations: cfg.Iterations,
		Seed1:      cfg.Seed1,
		Seed2:      cfg.Seed2,
	})
	s.vecs = append(s.vecs, expanded...)
	// Pipeline drain so the last results reach the output port.
	for i := 0; i < 4; i++ {
		s.vecs = append(s.vecs, 0)
	}

	golden, err := s.runBurst(dsp.New())
	if err != nil {
		return nil, err
	}
	s.golden = golden
	return s, nil
}

// normalizationPreamble zeroes every register and both accumulators so
// the burst response does not depend on the interrupted workload.
func normalizationPreamble() []isa.Instr {
	var p []isa.Instr
	for r := 0; r < isa.NumRegs; r++ {
		p = append(p, isa.Instr{Op: isa.OpLdi, Imm: 0, RD: uint8(r)})
	}
	p = append(p,
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 0},
		isa.Instr{Op: isa.OpMpy, Acc: isa.AccB, RA: 0, RB: 1, RD: 0},
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpNop},
	)
	return p
}

// Golden returns the characterized signature.
func (s *Selftest) Golden() uint64 { return s.golden }

// BurstCycles returns the burst length in clock cycles.
func (s *Selftest) BurstCycles() int { return len(s.vecs) }

// runBurst feeds the burst into the core and compacts the output port.
func (s *Selftest) runBurst(core *dsp.Core) (uint64, error) {
	m, err := lfsr.NewMISR(s.cfg.MISRWidth)
	if err != nil {
		return 0, err
	}
	for _, v := range s.vecs {
		core.Step(uint32(v))
		m.Absorb(uint64(core.Output()))
	}
	return m.Signature(), nil
}

// Result reports one burst.
type Result struct {
	Signature uint64
	Pass      bool
	Cycles    int
}

// RunBurst executes one self-test burst on the caller's core, saving and
// restoring the architectural context around it, and compares the
// signature against the golden value.
func (s *Selftest) RunBurst(core *dsp.Core) (Result, error) {
	saved := core.SaveState()
	sig, err := s.runBurst(core)
	core.RestoreState(saved)
	if err != nil {
		return Result{}, err
	}
	return Result{Signature: sig, Pass: sig == s.golden, Cycles: len(s.vecs)}, nil
}

// String summarizes the characterization.
func (s *Selftest) String() string {
	return fmt.Sprintf("online selftest: %d cycles/burst, golden signature %0*x",
		len(s.vecs), (s.cfg.MISRWidth+3)/4, s.golden)
}
