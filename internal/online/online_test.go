package online

import (
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/selftest"
)

// testProgram is a small fixed self-test loop (keeps the tests
// independent of the metrics engine).
func testProgram() *selftest.Program {
	return &selftest.Program{Loop: []isa.Instr{
		{Op: isa.OpLdRnd, RD: 0, RndImm: true},
		{Op: isa.OpLdRnd, RD: 1, RndImm: true},
		{Op: isa.OpNop},
		{Op: isa.OpMpy, Acc: isa.AccA, RA: 0, RB: 1, RD: 2},
		{Op: isa.OpMacP, Acc: isa.AccB, RA: 1, RB: 0, RD: 3},
		{Op: isa.OpNop},
		{Op: isa.OpOut, Src: 2},
		{Op: isa.OpOut, Src: 3},
	}}
}

func TestBurstPassesOnHealthyCore(t *testing.T) {
	st, err := New(testProgram(), Config{Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	core := dsp.New()
	res, err := st.RunBurst(core)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("healthy core failed: sig %x golden %x", res.Signature, st.Golden())
	}
	if res.Cycles != st.BurstCycles() {
		t.Fatalf("cycles %d != %d", res.Cycles, st.BurstCycles())
	}
}

func TestBurstIndependentOfWorkloadState(t *testing.T) {
	st, err := New(testProgram(), Config{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		core := dsp.New()
		// Arbitrary functional workload state.
		for r := 0; r < isa.NumRegs; r++ {
			core.SetReg(r, uint8(rng.Uint32()))
		}
		core.SetAcc(isa.AccA, rng.Uint32())
		core.SetAcc(isa.AccB, rng.Uint32())
		res, err := st.RunBurst(core)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass {
			t.Fatalf("trial %d: burst signature depends on workload state", trial)
		}
	}
}

func TestContextSavedAndRestored(t *testing.T) {
	st, err := New(testProgram(), Config{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	core := dsp.New()
	core.SetReg(5, 0xAB)
	core.SetAcc(isa.AccA, 0x1234)
	before := core.SaveState()
	if _, err := st.RunBurst(core); err != nil {
		t.Fatal(err)
	}
	after := core.SaveState()
	if before != after {
		t.Fatalf("context not restored: %+v vs %+v", before, after)
	}
}

// faultyProbe corrupts one component's output on every cycle — a crude
// permanent-fault model at the behavioral level. The flipped bit sits in
// the limiter's visible window (bits [11:4] of 18-bit signals): an LSB
// error below the window is architecturally invisible by design.
type faultyProbe struct{ comp dsp.Component }

func (p faultyProbe) Observe(comp dsp.Component, mode int, value uint32) uint32 {
	if comp == p.comp {
		return value ^ 1<<uint(p.comp.Width()/2)
	}
	return value
}

func TestBurstCatchesFaultyCore(t *testing.T) {
	st, err := New(testProgram(), Config{Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []dsp.Component{dsp.CompMultiplier, dsp.CompAddSub, dsp.CompLimiter} {
		core := dsp.New()
		core.SetProbe(faultyProbe{comp: comp})
		res, err := st.RunBurst(core)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pass {
			t.Errorf("burst missed a faulty %v", comp)
		}
	}
}

func TestGoldenStableAcrossCharacterizations(t *testing.T) {
	a, err := New(testProgram(), Config{Iterations: 6, Seed1: 9, Seed2: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testProgram(), Config{Iterations: 6, Seed1: 9, Seed2: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Golden() != b.Golden() {
		t.Fatal("characterization not deterministic")
	}
	c, err := New(testProgram(), Config{Iterations: 6, Seed1: 10, Seed2: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Golden() == a.Golden() {
		t.Fatal("different seeds should give different signatures")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(testProgram(), Config{Iterations: 2, MISRWidth: 21}); err == nil {
		t.Fatal("unsupported MISR width should error")
	}
	st, err := New(testProgram(), Config{}) // defaults
	if err != nil {
		t.Fatal(err)
	}
	if st.BurstCycles() == 0 {
		t.Fatal("empty burst")
	}
}
