package online

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dsp"
	"repro/internal/isa"
)

func characterize(t *testing.T, cfg IntervalConfig) *IntervalSet {
	t.Helper()
	set, err := CharacterizeIntervals(testProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestCharacterizeIntervalsDeterministic: same program and config give
// the same schedule — interval count, cycle counts and golden
// signatures — on every characterization (the coordinator and a
// restarted coordinator must agree on the goldens).
func TestCharacterizeIntervalsDeterministic(t *testing.T) {
	cfg := IntervalConfig{Config: Config{Iterations: 6, MISRWidth: 24}, Intervals: 5}
	a, b := characterize(t, cfg), characterize(t, cfg)
	if !reflect.DeepEqual(a.Intervals(), b.Intervals()) {
		t.Fatalf("characterization not deterministic:\n%+v\nvs\n%+v", a.Intervals(), b.Intervals())
	}
	if len(a.Intervals()) != 5 {
		t.Fatalf("%d intervals, want 5", len(a.Intervals()))
	}
	total := 0
	for _, iv := range a.Intervals() {
		if iv.Cycles <= drainWords {
			t.Fatalf("interval %d has only %d cycles", iv.Index, iv.Cycles)
		}
		total += iv.Cycles
	}
	if total != a.BurstCycles() {
		t.Fatalf("cycle sum %d != BurstCycles %d", total, a.BurstCycles())
	}
}

// TestIntervalsPassOnHealthyCore: the full schedule run in one
// unlimited slot passes every interval on a fault-free core — and does
// so from arbitrary functional workload state, because interval 0
// carries the normalization preamble.
func TestIntervalsPassOnHealthyCore(t *testing.T) {
	set := characterize(t, IntervalConfig{Config: Config{Iterations: 6}, Intervals: 4})
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		core := dsp.New()
		for r := 0; r < isa.NumRegs; r++ {
			core.SetReg(r, uint8(rng.Uint32()))
		}
		core.SetAcc(isa.AccA, rng.Uint32())
		core.SetAcc(isa.AccB, rng.Uint32())
		r := NewRunner(set, core)
		outcomes, err := r.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		st := r.Status()
		if !st.Done || st.Failed || st.Passed != 4 || len(outcomes) != 4 {
			t.Fatalf("trial %d: status %+v outcomes %v", trial, st, outcomes)
		}
	}
}

// TestResumeAcrossSlotsBitIdentical is the resumability core claim: a
// schedule chopped into many budgeted slots (with functional workload
// mutating the core between slots) reaches exactly the same signatures
// as one uninterrupted pass.
func TestResumeAcrossSlotsBitIdentical(t *testing.T) {
	set := characterize(t, IntervalConfig{Config: Config{Iterations: 8, MISRWidth: 32}, Intervals: 6})
	biggest := 0
	for _, iv := range set.Intervals() {
		if iv.Cycles > biggest {
			biggest = iv.Cycles
		}
	}

	core := dsp.New()
	r := NewRunner(set, core)
	rng := rand.New(rand.NewSource(42))
	for slots := 0; !r.Status().Done; slots++ {
		if slots > 100 {
			t.Fatal("schedule never finished")
		}
		// A budget that fits exactly one interval (whichever is next).
		if _, err := r.Run(biggest); err != nil {
			t.Fatal(err)
		}
		// The functional workload runs between slots and trashes state;
		// the runner must restore its own test context.
		for i := 0; i < 20; i++ {
			core.Step(rng.Uint32())
		}
	}
	st := r.Status()
	if st.Failed || st.Passed != 6 || st.Mismatches != 0 {
		t.Fatalf("sliced run diverged from characterization: %+v", st)
	}
	if st.Slots < 2 {
		t.Fatalf("only %d slots used; the test never actually resumed", st.Slots)
	}
}

// TestRunPreservesFunctionalContext: the workload's architectural state
// survives a self-test slot untouched (save/restore around the slot).
func TestRunPreservesFunctionalContext(t *testing.T) {
	set := characterize(t, IntervalConfig{Config: Config{Iterations: 4}, Intervals: 3})
	core := dsp.New()
	core.SetReg(3, 0xAB)
	core.SetAcc(isa.AccA, 0xDEAD)
	before := core.SaveState()
	r := NewRunner(set, core)
	if _, err := r.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := core.SaveState(); !reflect.DeepEqual(got, before) {
		t.Fatalf("functional context clobbered: %+v vs %+v", got, before)
	}
}

// TestContinuePolicyResumes / TestRestartPolicyStartsOver pin the two
// STC preemption modes.
func TestContinuePolicyResumes(t *testing.T) {
	set := characterize(t, IntervalConfig{Config: Config{Iterations: 6}, Intervals: 4, Policy: PolicyContinue})
	core := dsp.New()
	r := NewRunner(set, core)
	first := set.Intervals()[0].Cycles
	if _, err := r.Run(first); err != nil { // fits interval 0 only
		t.Fatal(err)
	}
	st := r.Status()
	if st.Next != 1 || st.Preemptions != 1 || st.Completed != 1 {
		t.Fatalf("after preempted slot: %+v", st)
	}
	if _, err := r.Run(0); err != nil { // unlimited: finish the rest
		t.Fatal(err)
	}
	st = r.Status()
	if !st.Done || st.Failed || st.Passed != 4 || st.Completed != 4 {
		t.Fatalf("continue policy did not finish cleanly: %+v", st)
	}
}

func TestRestartPolicyStartsOver(t *testing.T) {
	set := characterize(t, IntervalConfig{Config: Config{Iterations: 6}, Intervals: 4, Policy: PolicyRestart})
	core := dsp.New()
	r := NewRunner(set, core)
	first := set.Intervals()[0].Cycles
	if _, err := r.Run(first); err != nil {
		t.Fatal(err)
	}
	if st := r.Status(); st.Next != 0 || st.Preemptions != 1 {
		t.Fatalf("restart policy kept position: %+v", st)
	}
	if _, err := r.Run(0); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	// Interval 0 ran twice (once before the preemption, once after the
	// restart); every signature still matched.
	if !st.Done || st.Failed || st.Completed != 5 || st.Passed != 5 {
		t.Fatalf("restart policy outcome: %+v", st)
	}
}

// TestTimeoutPreload: an interval exceeding the timeout preload is
// flagged as hung. Characterization refuses to build such a schedule,
// so the field path is exercised by tightening the preload afterwards —
// the STC analogue of a watchdog firing on a wedged interval.
func TestTimeoutPreload(t *testing.T) {
	if _, err := CharacterizeIntervals(testProgram(),
		IntervalConfig{Config: Config{Iterations: 8}, Intervals: 2, TimeoutCycles: 3}); err == nil {
		t.Fatal("characterization accepted intervals larger than the timeout preload")
	}

	set := characterize(t, IntervalConfig{Config: Config{Iterations: 6}, Intervals: 4})
	set.cfg.TimeoutCycles = set.Intervals()[0].Cycles // interval 0 fits; interval 1+ may too — force it below
	set.cfg.TimeoutCycles = 1                         // nothing fits: first interval times out immediately
	core := dsp.New()
	r := NewRunner(set, core)
	outcomes, err := r.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if len(outcomes) != 1 || outcomes[0] != IntervalTimeout || !st.Failed || st.Timeouts != 1 || st.FailedInterval != 0 {
		t.Fatalf("timeout path: outcomes %v status %+v", outcomes, st)
	}
}

// TestSelfCheckCatchesInjectedFault is the acceptance e2e at package
// level: a seeded deliberate fault must mismatch at least one interval
// signature, while a clean core passes all intervals of the same set.
func TestSelfCheckCatchesInjectedFault(t *testing.T) {
	set := characterize(t, IntervalConfig{Config: Config{Iterations: 10, MISRWidth: 24}, Intervals: 6})
	for seed := int64(1); seed <= 8; seed++ {
		res, err := set.SelfCheck(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Caught {
			t.Fatalf("seed %d: comparator missed injected %s bit %d fault",
				seed, res.Component.Name(), res.Bit)
		}
		if len(res.MismatchedIntervals) == 0 {
			t.Fatalf("seed %d: caught with no mismatched intervals", seed)
		}
	}
	// Determinism: same seed, same fault, same mismatching intervals.
	a, err := set.SelfCheck(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := set.SelfCheck(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("self-check not deterministic: %+v vs %+v", a, b)
	}
	// The clean core still passes: the planted fault lived in the probe,
	// not the golden signatures.
	r := NewRunner(set, dsp.New())
	if _, err := r.Run(0); err != nil {
		t.Fatal(err)
	}
	if st := r.Status(); !st.Done || st.Failed {
		t.Fatalf("clean core fails after self-check: %+v", st)
	}
}

// TestRunnerDetectsRealFault: a runner over a genuinely faulty core
// (same probe mechanism, but through the public schedule path) fails
// with the mismatching interval named.
func TestRunnerDetectsRealFault(t *testing.T) {
	set := characterize(t, IntervalConfig{Config: Config{Iterations: 10, MISRWidth: 24}, Intervals: 6})
	core := dsp.New()
	core.SetProbe(stuckBitProbe{comp: dsp.CompMultiplier, bit: 7})
	r := NewRunner(set, core)
	if _, err := r.Run(0); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if !st.Failed || st.Mismatches == 0 || st.FailedInterval < 0 {
		t.Fatalf("faulty core sailed through: %+v", st)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"": PolicyContinue, "continue": PolicyContinue, "restart": PolicyRestart} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if PolicyContinue.String() != "continue" || PolicyRestart.String() != "restart" {
		t.Fatal("policy strings drifted")
	}
}
