// STC-style interval scheduling: the production shape of periodic
// in-field self-test (modeled on the TI Hercules self-test controller).
// Instead of one monolithic burst, the characterized self-test program
// is partitioned into N resumable intervals, each carrying its own
// golden MISR signature and timeout budget. The scheduler runs whole
// intervals inside a caller-supplied cycle budget (the time slice an OS
// can steal from the functional workload), yields when the next
// interval does not fit, and — per the restart-vs-continue policy —
// either resumes where it stopped or starts the schedule over.
//
// Interval boundaries are pipeline-drained points: each interval's
// vector slice ends with NOP drain words, so the architectural state
// snapshot taken at a boundary is exact and an interval executed three
// slots later behaves bit-identically to characterization.
//
// The comparator itself is tested STC-style: SelfCheck deliberately
// injects a known fault (a deterministic, seeded pick of datapath
// component and output bit) and asserts at least one interval signature
// mismatches. A comparator that cannot see a planted fault cannot be
// trusted to see a real one.
package online

import (
	"fmt"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/lfsr"
	"repro/internal/obs"
	"repro/internal/selftest"
)

// Policy selects what the scheduler does after a preemption or timeout.
type Policy int

const (
	// PolicyContinue resumes at the interrupted interval (the STC
	// "continue" mode: a long schedule makes progress across slots).
	PolicyContinue Policy = iota
	// PolicyRestart starts over at interval 0 (the STC "restart" mode:
	// a part that keeps getting preempted re-tests from scratch, trading
	// progress for freshness of the full signature chain).
	PolicyRestart
)

// ParsePolicy maps the wire spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "continue":
		return PolicyContinue, nil
	case "restart":
		return PolicyRestart, nil
	}
	return 0, fmt.Errorf("online: unknown policy %q (want continue or restart)", s)
}

func (p Policy) String() string {
	if p == PolicyRestart {
		return "restart"
	}
	return "continue"
}

// Interval outcome metrics, exposed on /v1/metrics.
var (
	famIntervals = obs.Default().CounterFamily("sbst_online_intervals_total",
		"Online self-test intervals executed, by outcome.", "result")
	ctrIntervalPass     = famIntervals.Counter("pass")
	ctrIntervalMismatch = famIntervals.Counter("mismatch")
	ctrIntervalTimeout  = famIntervals.Counter("timeout")
	ctrIntervalPreempt  = famIntervals.Counter("preempted")
	gaugeCurrentInt     = obs.Default().GaugeFamily("sbst_online_current_interval",
		"Next interval index the online scheduler will run.").Gauge()
	ctrSigMismatch = obs.Default().CounterFamily("sbst_online_signature_mismatches_total",
		"Interval signature comparator mismatches.").Counter()
	famSelfCheck = obs.Default().CounterFamily("sbst_online_selfcheck_total",
		"Comparator self-checks by outcome (caught = injected fault flagged).", "result")
)

// IntervalConfig sizes an interval schedule.
type IntervalConfig struct {
	// Config is the underlying burst configuration (iterations, MISR
	// width, LFSR seeds).
	Config
	// Intervals is the partition count (default 8, clamped to the
	// number of available vectors).
	Intervals int
	// TimeoutCycles is the per-interval timeout preload: an interval
	// needing more cycles than this is aborted as hung (0 = no timeout).
	// The STC analogue is the timeout preload register.
	TimeoutCycles int
	// Policy selects restart-vs-continue after preemption or timeout.
	Policy Policy
}

// Interval is one characterized slice of the self-test program.
type Interval struct {
	Index  int
	Cycles int
	// Golden is the interval's characterized MISR signature (fresh MISR
	// per interval, so intervals verify independently).
	Golden uint64
	vecs   []uint64
}

// IntervalSet is a characterized interval schedule: the partitioned
// vector stream plus each interval's golden signature.
type IntervalSet struct {
	cfg       IntervalConfig
	intervals []Interval
	total     int
}

// CharacterizeIntervals partitions the program's burst stream into
// resumable intervals and records each interval's golden signature on a
// fault-free behavioral core.
func CharacterizeIntervals(prog *selftest.Program, cfg IntervalConfig) (*IntervalSet, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10
	}
	if cfg.MISRWidth == 0 {
		cfg.MISRWidth = 16
	}
	if _, err := lfsr.NewMISR(cfg.MISRWidth); err != nil {
		return nil, err
	}
	if cfg.Intervals <= 0 {
		cfg.Intervals = 8
	}

	// Build the full burst stream exactly like a monolithic Selftest:
	// normalization preamble + expanded loop iterations. The drain words
	// move to the interval boundaries below.
	var stream []uint64
	for _, in := range normalizationPreamble() {
		stream = append(stream, uint64(in.Encode()))
	}
	stream = append(stream, selftest.Expand(prog, selftest.ExpandOptions{
		Iterations: cfg.Iterations,
		Seed1:      cfg.Seed1,
		Seed2:      cfg.Seed2,
	})...)

	n := cfg.Intervals
	if n > len(stream) {
		n = len(stream)
	}
	s := &IntervalSet{cfg: cfg}
	chunk := (len(stream) + n - 1) / n
	for start := 0; start < len(stream); start += chunk {
		end := start + chunk
		if end > len(stream) {
			end = len(stream)
		}
		vecs := make([]uint64, 0, end-start+drainWords)
		vecs = append(vecs, stream[start:end]...)
		// Drain the pipeline at the boundary: the interval's last results
		// reach the output port inside its own signature window, and the
		// architectural snapshot taken here is exact for resumption.
		for i := 0; i < drainWords; i++ {
			vecs = append(vecs, 0)
		}
		s.intervals = append(s.intervals, Interval{Index: len(s.intervals), Cycles: len(vecs), vecs: vecs})
		s.total += len(vecs)
	}
	if cfg.TimeoutCycles > 0 {
		for i := range s.intervals {
			if s.intervals[i].Cycles > cfg.TimeoutCycles {
				return nil, fmt.Errorf("online: interval %d needs %d cycles, timeout preload is %d",
					i, s.intervals[i].Cycles, cfg.TimeoutCycles)
			}
		}
	}

	// Characterize: run the whole schedule in order on a clean core,
	// compacting each interval with a fresh MISR.
	core := dsp.New()
	for i := range s.intervals {
		sig, err := s.runInterval(core, &s.intervals[i])
		if err != nil {
			return nil, err
		}
		s.intervals[i].Golden = sig
	}
	return s, nil
}

// drainWords is the NOP padding at each interval boundary (pipeline
// depth + writeback margin, matching the monolithic burst's drain).
const drainWords = 4

// Intervals returns the characterized schedule (shared slice; callers
// must not mutate).
func (s *IntervalSet) Intervals() []Interval { return s.intervals }

// BurstCycles returns the whole schedule's length in cycles.
func (s *IntervalSet) BurstCycles() int { return s.total }

// Policy returns the configured preemption policy.
func (s *IntervalSet) Policy() Policy { return s.cfg.Policy }

// runInterval feeds one interval into the core and returns its MISR
// signature. The core is left at the interval's exit boundary
// (pipeline drained).
func (s *IntervalSet) runInterval(core *dsp.Core, iv *Interval) (uint64, error) {
	m, err := lfsr.NewMISR(s.cfg.MISRWidth)
	if err != nil {
		return 0, err
	}
	for _, v := range iv.vecs {
		core.Step(uint32(v))
		m.Absorb(uint64(core.Output()))
	}
	return m.Signature(), nil
}

// IntervalOutcome is one interval execution's result.
type IntervalOutcome string

const (
	IntervalPass     IntervalOutcome = "pass"
	IntervalMismatch IntervalOutcome = "mismatch"
	IntervalTimeout  IntervalOutcome = "timeout"
)

// Status is the runner's scheduling state, the analogue of the STC's
// current-interval and status registers.
type Status struct {
	// Next is the interval index the next slot starts at.
	Next int
	// Completed counts interval executions that produced a signature
	// (pass or mismatch), across restarts.
	Completed int
	// Passed / Mismatches / Timeouts / Preemptions count outcomes.
	Passed      int
	Mismatches  int
	Timeouts    int
	Preemptions int
	// Slots counts Run invocations.
	Slots int
	// Done is set once every interval of one full schedule pass has
	// produced a signature.
	Done bool
	// Failed is set on the first mismatch or timeout; FailedInterval
	// names the interval (-1 while healthy).
	Failed         bool
	FailedInterval int
}

// Runner executes an interval schedule on a core across scheduling
// slots, saving and restoring the functional context around each slot
// and the test context between slots. Not safe for concurrent use.
type Runner struct {
	set  *IntervalSet
	core *dsp.Core
	st   Status
	// testState is the architectural state at the entry boundary of
	// interval st.Next (valid once mid-schedule).
	testState dsp.State
	midRun    bool
}

// NewRunner builds a runner for one core.
func NewRunner(set *IntervalSet, core *dsp.Core) *Runner {
	return &Runner{set: set, core: core, st: Status{FailedInterval: -1}}
}

// Status returns a copy of the scheduling state.
func (r *Runner) Status() Status { return r.st }

// Run executes one scheduling slot: whole intervals until the budget
// cannot fit the next one (budget 0 = unlimited, the whole remaining
// schedule). The caller's functional context is saved and restored
// around the slot. Returns the outcomes of the intervals executed in
// this slot.
func (r *Runner) Run(budgetCycles int) ([]IntervalOutcome, error) {
	if r.st.Done {
		return nil, nil
	}
	r.st.Slots++
	// Let the workload's in-flight instructions retire before the context
	// switch: architectural snapshots are only exact at drained points,
	// and the drain folds those retirements into the saved context
	// instead of losing them (or worse, letting them execute into the
	// test window and corrupt the signature).
	r.core.Drain()
	saved := r.core.SaveState()
	defer r.core.RestoreState(saved)

	// Re-enter the test context: mid-schedule intervals restore their
	// entry-boundary snapshot; interval 0 restores the characterization
	// entry state (reset-equivalent), which also pins the output port the
	// MISR starts absorbing before the normalization preamble has landed.
	if r.st.Next > 0 && r.midRun {
		r.core.RestoreState(r.testState)
	} else {
		r.core.RestoreState(dsp.State{})
	}

	var outcomes []IntervalOutcome
	remaining := budgetCycles
	for r.st.Next < len(r.set.intervals) {
		iv := &r.set.intervals[r.st.Next]
		if budgetCycles > 0 && remaining < iv.Cycles {
			// Preemption: the slot cannot fit the next interval.
			r.st.Preemptions++
			ctrIntervalPreempt.Add(1)
			if r.set.cfg.Policy == PolicyRestart {
				r.st.Next = 0
				r.midRun = false
			}
			gaugeCurrentInt.Set(float64(r.st.Next))
			return outcomes, nil
		}
		if t := r.set.cfg.TimeoutCycles; t > 0 && iv.Cycles > t {
			// Timeout preload says this interval hung (cannot happen for
			// a well-characterized set — see CharacterizeIntervals — but
			// the field check mirrors the STC's independent watchdog).
			r.st.Timeouts++
			ctrIntervalTimeout.Add(1)
			r.fail(iv.Index)
			if r.set.cfg.Policy == PolicyRestart {
				r.st.Next = 0
				r.midRun = false
			}
			gaugeCurrentInt.Set(float64(r.st.Next))
			return append(outcomes, IntervalTimeout), nil
		}
		sig, err := r.set.runInterval(r.core, iv)
		if err != nil {
			return outcomes, err
		}
		remaining -= iv.Cycles
		r.st.Completed++
		if sig == iv.Golden {
			r.st.Passed++
			ctrIntervalPass.Add(1)
			outcomes = append(outcomes, IntervalPass)
		} else {
			r.st.Mismatches++
			ctrIntervalMismatch.Add(1)
			ctrSigMismatch.Add(1)
			r.fail(iv.Index)
			outcomes = append(outcomes, IntervalMismatch)
		}
		r.st.Next++
		r.testState = r.core.SaveState()
		r.midRun = true
		gaugeCurrentInt.Set(float64(r.st.Next))
	}
	r.st.Done = true
	r.st.Next = 0
	r.midRun = false
	gaugeCurrentInt.Set(0)
	return outcomes, nil
}

func (r *Runner) fail(interval int) {
	if !r.st.Failed {
		r.st.Failed = true
		r.st.FailedInterval = interval
	}
}

// SelfCheckResult reports a deliberate-fault comparator check.
type SelfCheckResult struct {
	// Component and Bit name the injected fault: the component's output
	// bit that was flipped on every observation.
	Component dsp.Component
	Bit       int
	// Caught is true when at least one interval signature mismatched.
	Caught bool
	// MismatchedIntervals lists the intervals that flagged the fault.
	MismatchedIntervals []int
}

// selfCheckComponents are the fault-insertion targets: datapath
// components whose output bits the self-test programs demonstrably
// propagate to the output port (the paper's Table 2 columns with
// near-full observability).
var selfCheckComponents = []dsp.Component{dsp.CompMultiplier, dsp.CompAddSub, dsp.CompLimiter}

// stuckBitProbe flips one output bit of one component on every cycle —
// the behavioral analogue of a stuck-at fault on that line.
type stuckBitProbe struct {
	comp dsp.Component
	bit  int
}

func (p stuckBitProbe) Observe(comp dsp.Component, mode int, value uint32) uint32 {
	if comp == p.comp {
		return value ^ 1<<uint(p.bit)
	}
	return value
}

// SelfCheck is the STC's signature-compare self-test: it picks a known
// fault with a deterministic seeded draw (chaos-style — same seed, same
// fault), injects it into a fresh core, runs the full interval
// schedule, and reports whether the comparator flagged it. The caller
// asserts Caught; a miss means the comparator (or the program's
// observability) cannot be trusted.
func (s *IntervalSet) SelfCheck(seed int64) (SelfCheckResult, error) {
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	comp := selfCheckComponents[rng.Intn(len(selfCheckComponents))]
	// Middle-of-word bits sit inside the limiter's saturation window and
	// the output port's byte lane for every target component, so the
	// flip is architecturally visible; which one is the seeded draw.
	lo, hi := comp.Width()/4, comp.Width()/2
	bit := lo + rng.Intn(hi-lo+1)

	core := dsp.New()
	core.SetProbe(stuckBitProbe{comp: comp, bit: bit})
	res := SelfCheckResult{Component: comp, Bit: bit}
	for i := range s.intervals {
		sig, err := s.runInterval(core, &s.intervals[i])
		if err != nil {
			return res, err
		}
		if sig != s.intervals[i].Golden {
			res.Caught = true
			res.MismatchedIntervals = append(res.MismatchedIntervals, i)
		}
	}
	if res.Caught {
		famSelfCheck.Counter("caught").Add(1)
	} else {
		famSelfCheck.Counter("missed").Add(1)
	}
	return res, nil
}
