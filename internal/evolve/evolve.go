// Package evolve implements a deterministic, seeded genetic search over
// self-test program skeletons for the DSP core, after "Evolutionary
// Approach to Test Generation for Functional BIST": the genome encodes
// instruction-slot choices over the selftest generator's vocabulary
// plus the template architecture's LFSR configuration — seed,
// feedback polynomial (drawn from a pool of verified maximal-length
// masks) and a hybrid-BIST reseed schedule — and fitness is fault
// coverage per test cycle.
//
// The package is deliberately evaluation-free: it breeds genomes and
// renders phenotypes (assembler source + expansion options), while the
// caller measures fitness however it likes — locally, or fanned out
// across a worker fleet. All randomness flows from one splitmix64
// stream seeded by Params.Seed and is consumed in a fixed order that
// depends only on the fitness values fed back, never on evaluation
// timing, so the same seed reproduces the same search bit for bit at
// any evaluation concurrency.
package evolve

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/selftest"
)

// Slot is one evolved instruction position: an operation from the
// generator vocabulary, the accumulator it targets (MAC family only)
// and its destination register from the row-destination pool.
type Slot struct {
	Op   isa.Op
	Acc  isa.Acc
	Dest uint8
}

// Genome is one individual: the program skeleton plus the LFSR genes.
type Genome struct {
	Slots []Slot
	// Seed1 and Seed2 seed LFSR1 (immediates) and LFSR2 (register
	// rotation) for template expansion.
	Seed1, Seed2 uint64
	// Taps1 is LFSR1's feedback polynomial, one of Params.Taps.
	Taps1 uint64
	// ReseedEvery/Reseeds is the hybrid reseed schedule gene: when
	// ReseedEvery > 0, expansion reseeds LFSR1 every that many loop
	// iterations, cycling through Reseeds. Zero disables reseeding.
	ReseedEvery int
	Reseeds     []uint64
}

// String renders the genome's canonical text encoding — stable across
// runs, so byte-equality of two renderings means genome equality.
func (g Genome) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed1=%#04x seed2=%#03x taps=%#04x", g.Seed1, g.Seed2, g.Taps1)
	if g.ReseedEvery > 0 {
		fmt.Fprintf(&sb, " reseed=%d@", g.ReseedEvery)
		for i, r := range g.Reseeds {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%#04x", r)
		}
	}
	sb.WriteString(" |")
	for _, s := range g.Slots {
		mn := s.Op.Mnemonic()
		if s.Op.MacFamily() {
			mn += s.Acc.String()
		}
		fmt.Fprintf(&sb, " %s>%d", mn, s.Dest)
	}
	return sb.String()
}

// Program renders the phenotype's loop body: the randomization
// preamble, each slot instruction with an observing OUT wrapper, then
// delay-slot scheduling.
func (g Genome) Program() *selftest.Program {
	loop := selftest.Preamble()
	ra, rb := selftest.SlotSources()
	for _, s := range g.Slots {
		var in isa.Instr
		if s.Op.Format() == isa.Format2 {
			in = isa.Instr{Op: s.Op, RD: s.Dest, RndImm: true}
		} else {
			in = isa.Instr{Op: s.Op, Acc: s.Acc, RA: ra, RB: rb, RD: s.Dest}
		}
		loop = append(loop, in)
		if s.Op.WritesDest() {
			loop = append(loop, isa.Instr{Op: isa.OpOut, Src: s.Dest})
		}
	}
	return &selftest.Program{Loop: selftest.FixHazards(loop)}
}

// Source renders the phenotype as assembler source, one instruction per
// line, round-trippable through isa.Assemble — the form that travels in
// a VectorSource to workers.
func (g Genome) Source() string {
	var sb strings.Builder
	for _, in := range g.Program().Loop {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fitness scores one evaluated phenotype: fault coverage dominates, and
// the vanishing cycle term breaks coverage ties toward shorter tests
// (coverage moves in quanta of one fault, ~1e-3 on the paper core, so
// 1e-9 per cycle can never trade coverage for length).
func Fitness(coverage float64, cycles int) float64 {
	return coverage - 1e-9*float64(cycles)
}

// Params configures a search. Zero fields select the defaults noted.
type Params struct {
	Population  int   // individuals per generation (default 12)
	Slots       int   // evolved instruction slots per genome (default 12)
	Elite       int   // top individuals copied unchanged (default 2)
	Tournament  int   // selection tournament size (default 3)
	MutationPct int   // per-gene mutation probability in percent (default 15)
	Seed        int64 // PRNG seed (default 1)
	// Taps is the polynomial gene pool; every entry must be a verified
	// maximal-length LFSR1 tap mask (lfsr.MaximalTaps supplies one).
	Taps []uint64
}

func (p Params) withDefaults() Params {
	if p.Population <= 0 {
		p.Population = 12
	}
	if p.Slots <= 0 {
		p.Slots = 12
	}
	if p.Elite <= 0 {
		p.Elite = 2
	}
	if p.Elite > p.Population {
		p.Elite = p.Population
	}
	if p.Tournament <= 0 {
		p.Tournament = 3
	}
	if p.MutationPct <= 0 {
		p.MutationPct = 15
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if len(p.Taps) == 0 {
		p.Taps = []uint64{0xD008} // the built-in width-16 primitive mask
	}
	return p
}

// reseedChoices are the ReseedEvery values mutation may pick (0 = no
// reseeding).
var reseedChoices = []int{0, 2, 3, 4, 6, 8}

// Search is one in-flight genetic search.
type Search struct {
	p     Params
	r     *rng
	ops   []isa.Op
	dests []uint8
	pop   []Genome
	gen   int
}

// New builds the seeded initial population.
func New(p Params) *Search {
	s := &Search{
		p:     p.withDefaults(),
		ops:   selftest.SlotOps(),
		dests: selftest.SlotDests(),
	}
	s.r = newRng(s.p.Seed)
	s.pop = make([]Genome, 0, s.p.Population)
	for i := 0; i < s.p.Population; i++ {
		s.pop = append(s.pop, s.randomGenome())
	}
	return s
}

// Gen returns the current generation index (0 = the initial population).
func (s *Search) Gen() int { return s.gen }

// Population returns deep copies of the current generation's genomes,
// in breeding order.
func (s *Search) Population() []Genome {
	out := make([]Genome, len(s.pop))
	for i, g := range s.pop {
		out[i] = cloneGenome(g)
	}
	return out
}

// Advance breeds the next generation from the current one's fitness
// values (index-aligned with Population()): elitism, tournament
// selection, one-point crossover and per-gene mutation, all consuming
// the search's PRNG in a fixed order.
func (s *Search) Advance(fitness []float64) {
	if len(fitness) != len(s.pop) {
		panic(fmt.Sprintf("evolve: %d fitness values for population %d", len(fitness), len(s.pop)))
	}
	order := rankDesc(fitness)
	next := make([]Genome, 0, len(s.pop))
	for i := 0; i < s.p.Elite && i < len(order); i++ {
		next = append(next, cloneGenome(s.pop[order[i]]))
	}
	for len(next) < len(s.pop) {
		a := s.tournament(fitness)
		b := s.tournament(fitness)
		child := s.crossover(s.pop[a], s.pop[b])
		s.mutate(&child)
		next = append(next, child)
	}
	s.pop = next
	s.gen++
}

// rankDesc returns population indices sorted by fitness descending,
// ties broken toward the lower index (stable, deterministic).
func rankDesc(fitness []float64) []int {
	order := make([]int, len(fitness))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if fitness[a] > fitness[b] || (fitness[a] == fitness[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	return order
}

func (s *Search) tournament(fitness []float64) int {
	best := s.r.intn(len(s.pop))
	for i := 1; i < s.p.Tournament; i++ {
		c := s.r.intn(len(s.pop))
		if fitness[c] > fitness[best] || (fitness[c] == fitness[best] && c < best) {
			best = c
		}
	}
	return best
}

func (s *Search) randomGenome() Genome {
	g := Genome{
		Seed1: s.r.next() & 0xFFFF,
		Seed2: s.r.next() & 0xFFF,
		Taps1: s.p.Taps[s.r.intn(len(s.p.Taps))],
	}
	s.rollReseed(&g)
	g.Slots = make([]Slot, 0, s.p.Slots)
	for i := 0; i < s.p.Slots; i++ {
		g.Slots = append(g.Slots, s.randomSlot())
	}
	return g
}

func (s *Search) randomSlot() Slot {
	return Slot{
		Op:   s.ops[s.r.intn(len(s.ops))],
		Acc:  isa.Acc(s.r.intn(2)),
		Dest: s.dests[s.r.intn(len(s.dests))],
	}
}

// rollReseed draws a fresh reseed-schedule gene: usually none, else a
// period from reseedChoices with two deterministic 16-bit seeds.
func (s *Search) rollReseed(g *Genome) {
	every := reseedChoices[s.r.intn(len(reseedChoices))]
	if every == 0 {
		g.ReseedEvery, g.Reseeds = 0, nil
		return
	}
	g.ReseedEvery = every
	g.Reseeds = []uint64{s.r.next() & 0xFFFF, s.r.next() & 0xFFFF}
}

// crossover combines two parents: one-point crossover on the slot
// vector, coin flips on the scalar LFSR genes (the reseed schedule
// crosses as one unit).
func (s *Search) crossover(a, b Genome) Genome {
	cut := s.r.intn(len(a.Slots) + 1)
	child := Genome{Slots: make([]Slot, 0, len(a.Slots))}
	child.Slots = append(child.Slots, a.Slots[:cut]...)
	child.Slots = append(child.Slots, b.Slots[cut:]...)
	child.Seed1 = pick(s.r, a.Seed1, b.Seed1)
	child.Seed2 = pick(s.r, a.Seed2, b.Seed2)
	child.Taps1 = pick(s.r, a.Taps1, b.Taps1)
	from := a
	if s.r.intn(2) == 1 {
		from = b
	}
	child.ReseedEvery = from.ReseedEvery
	child.Reseeds = append([]uint64(nil), from.Reseeds...)
	return child
}

func pick(r *rng, a, b uint64) uint64 {
	if r.intn(2) == 1 {
		return b
	}
	return a
}

// mutate re-rolls each gene with probability MutationPct.
func (s *Search) mutate(g *Genome) {
	for i := range g.Slots {
		if s.r.pct(s.p.MutationPct) {
			g.Slots[i] = s.randomSlot()
		}
	}
	if s.r.pct(s.p.MutationPct) {
		g.Seed1 = s.r.next() & 0xFFFF
	}
	if s.r.pct(s.p.MutationPct) {
		g.Seed2 = s.r.next() & 0xFFF
	}
	if s.r.pct(s.p.MutationPct) {
		g.Taps1 = s.p.Taps[s.r.intn(len(s.p.Taps))]
	}
	if s.r.pct(s.p.MutationPct) {
		s.rollReseed(g)
	}
}

func cloneGenome(g Genome) Genome {
	g.Slots = append([]Slot(nil), g.Slots...)
	g.Reseeds = append([]uint64(nil), g.Reseeds...)
	return g
}

// rng is a splitmix64 stream: tiny, fast, and — unlike math/rand —
// guaranteed stable across Go releases, which the bit-identical resume
// contract depends on.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pct(p int) bool { return r.intn(100) < p }
