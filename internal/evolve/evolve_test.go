package evolve

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/lfsr"
	"repro/internal/selftest"
)

// fakeFitness is a deterministic stand-in for fault simulation: it
// hashes the genome rendering so different genomes score differently
// but the same genome always scores the same.
func fakeFitness(g Genome) float64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(g.String()) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return float64(h%10000) / 10000
}

// TestSearchDeterminism: two searches with the same seed, fed the same
// fitness values, produce byte-identical populations at every
// generation; a different seed diverges.
func TestSearchDeterminism(t *testing.T) {
	taps, err := lfsr.MaximalTaps(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Population: 8, Slots: 6, Seed: 42, Taps: taps}
	a, b := New(p), New(p)
	for gen := 0; gen < 4; gen++ {
		pa, pb := a.Population(), b.Population()
		fit := make([]float64, len(pa))
		for i := range pa {
			if pa[i].String() != pb[i].String() {
				t.Fatalf("gen %d individual %d diverged:\n%s\n%s", gen, i, pa[i], pb[i])
			}
			fit[i] = fakeFitness(pa[i])
		}
		a.Advance(fit)
		b.Advance(fit)
	}

	other := New(Params{Population: 8, Slots: 6, Seed: 43, Taps: taps})
	same := 0
	for i, g := range New(p).Population() {
		if g.String() == other.Population()[i].String() {
			same++
		}
	}
	if same == 8 {
		t.Fatal("different seeds produced an identical initial population")
	}
}

// TestPhenotypeValidity: every genome in a few bred generations renders
// to source that assembles, schedules hazard-free, and expands under
// its own LFSR genes.
func TestPhenotypeValidity(t *testing.T) {
	taps, err := lfsr.MaximalTaps(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Params{Population: 6, Slots: 8, Seed: 7, Taps: taps})
	for gen := 0; gen < 3; gen++ {
		pop := s.Population()
		fit := make([]float64, len(pop))
		for i, g := range pop {
			prog, err := isa.Assemble(g.Source())
			if err != nil {
				t.Fatalf("gen %d individual %d does not assemble: %v\n%s", gen, i, err, g.Source())
			}
			if bad := selftest.HazardViolations(prog); len(bad) != 0 {
				t.Fatalf("gen %d individual %d has delay-slot hazards at %v", gen, i, bad)
			}
			vecs := selftest.Expand(&selftest.Program{Loop: prog}, selftest.ExpandOptions{
				Iterations:  4,
				Seed1:       g.Seed1,
				Seed2:       g.Seed2,
				Taps1:       g.Taps1,
				ReseedEvery: g.ReseedEvery,
				Reseeds:     g.Reseeds,
			})
			if len(vecs) != 4*len(prog) {
				t.Fatalf("gen %d individual %d expanded to %d vectors, want %d", gen, i, len(vecs), 4*len(prog))
			}
			fit[i] = fakeFitness(g)
		}
		s.Advance(fit)
	}
}

// TestAdvanceElitism: the best individual survives unchanged into the
// next generation.
func TestAdvanceElitism(t *testing.T) {
	s := New(Params{Population: 6, Slots: 4, Elite: 2, Seed: 3})
	pop := s.Population()
	fit := make([]float64, len(pop))
	fit[3] = 1.0 // individual 3 dominates
	best := pop[3].String()
	s.Advance(fit)
	if got := s.Population()[0].String(); got != best {
		t.Fatalf("elite slot 0 is not the best individual:\n got %s\nwant %s", got, best)
	}
	if s.Gen() != 1 {
		t.Fatalf("Gen() = %d after one Advance, want 1", s.Gen())
	}
}

// TestRankDesc pins the deterministic tie-break: equal fitness ranks by
// lower index.
func TestRankDesc(t *testing.T) {
	order := rankDesc([]float64{0.5, 0.9, 0.5, 0.1})
	want := []int{1, 0, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rankDesc = %v, want %v", order, want)
		}
	}
}

// TestFitnessTieBreak: equal coverage prefers fewer cycles, but one
// fault quantum of coverage always beats any cycle saving.
func TestFitnessTieBreak(t *testing.T) {
	if !(Fitness(0.5, 100) > Fitness(0.5, 200)) {
		t.Fatal("equal coverage did not prefer fewer cycles")
	}
	// One fault quantum on the paper core is ~6.7e-4 of coverage; at
	// realistic test lengths (tens of thousands of cycles) the cycle
	// penalty must never outweigh it.
	if !(Fitness(0.5+1.0/1500, 60000) > Fitness(0.5, 1)) {
		t.Fatal("cycle penalty outweighed a coverage quantum")
	}
}
