// Package fault implements single-stuck-at fault modeling and a
// PROOFS-style bit-parallel sequential fault simulator.
//
// The fault universe is every net of a logic.Netlist stuck at 0 and at 1.
// When the netlist is built with fanout-branch insertion every classical
// fault site (gate output stems and gate input pins on fanout branches)
// is a distinct net, so net faults cover the full pin-level model.
// Structural equivalence collapsing shrinks the list before simulation;
// coverage is reported over the collapsed list, the convention most
// commercial tools default to.
//
// Simulation packs the fault-free machine into bit-lane 0 of a 64-lane
// word simulator and up to 63 faulty machines into the remaining lanes.
// The vector sequence is processed in segments: at each segment boundary
// detected faults are dropped and survivors are repacked into fresh
// batches, carrying their per-fault flip-flop state across the boundary,
// so late segments run with very few batches.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Fault is a single stuck-at fault on a net.
type Fault struct {
	Site logic.NetID
	SA1  bool
}

// String renders the fault in the conventional site/polarity form.
func (f Fault) String() string {
	pol := "sa0"
	if f.SA1 {
		pol = "sa1"
	}
	return fmt.Sprintf("net%d/%s", f.Site, pol)
}

// AllFaults enumerates both polarities on every net except constants
// (stuck-at faults on constant drivers are undetectable by definition in
// this model) and dead nets outside every output's input cone (logic a
// synthesis tool would have pruned; their faults are untestable by
// construction). Both exclusions keep coverage denominators honest.
func AllFaults(n *logic.Netlist) []Fault {
	live := n.LiveNets()
	faults := make([]Fault, 0, 2*n.NumNets())
	for id := 0; id < n.NumNets(); id++ {
		switch n.Gate(logic.NetID(id)).Kind {
		case logic.GateConst0, logic.GateConst1:
			continue
		}
		if !live[id] {
			continue
		}
		faults = append(faults,
			Fault{Site: logic.NetID(id), SA1: false},
			Fault{Site: logic.NetID(id), SA1: true})
	}
	return faults
}

// RegionFaults enumerates both polarities on every net inside the named
// hierarchical region (see logic.Builder.PushScope).
func RegionFaults(n *logic.Netlist, region string) []Fault {
	nets := n.RegionNets(region)
	if len(nets) == 0 {
		return nil
	}
	live := n.LiveNets()
	faults := make([]Fault, 0, 2*len(nets))
	for _, id := range nets {
		switch n.Gate(id).Kind {
		case logic.GateConst0, logic.GateConst1:
			continue
		}
		if !live[id] {
			continue
		}
		faults = append(faults, Fault{Site: id, SA1: false}, Fault{Site: id, SA1: true})
	}
	return faults
}

// faultKey packs a fault for union-find indexing: 2*net + polarity.
func faultKey(f Fault) int {
	k := int(f.Site) * 2
	if f.SA1 {
		k++
	}
	return k
}

func keyFault(k int) Fault {
	return Fault{Site: logic.NetID(k / 2), SA1: k%2 == 1}
}

// Collapse performs structural equivalence collapsing and returns one
// representative per equivalence class (in deterministic order) plus a
// map from every input fault to its class representative.
//
// Rules applied (classical single-output gate equivalences), each only
// when the gate is its input net's sole reader so the input-pin fault and
// the net fault coincide:
//
//	BUF:  in/sa-v  ≡ out/sa-v
//	NOT:  in/sa-v  ≡ out/sa-!v
//	AND:  in/sa-0  ≡ out/sa-0     NAND: in/sa-0 ≡ out/sa-1
//	OR:   in/sa-1  ≡ out/sa-1     NOR:  in/sa-1 ≡ out/sa-0
func Collapse(n *logic.Netlist, faults []Fault) ([]Fault, map[Fault]Fault) {
	parent := make([]int, 2*n.NumNets())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	key := func(net logic.NetID, sa1 bool) int {
		k := int(net) * 2
		if sa1 {
			k++
		}
		return k
	}
	for id := 0; id < n.NumNets(); id++ {
		out := logic.NetID(id)
		g := n.Gate(out)
		for _, in := range g.In {
			if len(n.Fanout(in)) != 1 {
				continue
			}
			switch g.Kind {
			case logic.GateBuf:
				union(key(in, false), key(out, false))
				union(key(in, true), key(out, true))
			case logic.GateNot:
				union(key(in, false), key(out, true))
				union(key(in, true), key(out, false))
			case logic.GateAnd:
				union(key(in, false), key(out, false))
			case logic.GateNand:
				union(key(in, false), key(out, true))
			case logic.GateOr:
				union(key(in, true), key(out, true))
			case logic.GateNor:
				union(key(in, true), key(out, false))
			}
		}
	}
	// Representative for each class: the smallest member key that appears
	// in the input list (class roots may collapse across the region
	// boundary; keep representatives inside the requested fault set).
	repOf := make(map[int]int)
	keys := make([]int, 0, len(faults))
	for _, f := range faults {
		keys = append(keys, faultKey(f))
	}
	sort.Ints(keys)
	for _, k := range keys {
		root := find(k)
		if _, ok := repOf[root]; !ok {
			repOf[root] = k
		}
	}
	reps := make([]Fault, 0, len(repOf))
	seen := make(map[int]bool, len(repOf))
	classOf := make(map[Fault]Fault, len(faults))
	for _, k := range keys {
		rep := repOf[find(k)]
		classOf[keyFault(k)] = keyFault(rep)
		if !seen[rep] {
			seen[rep] = true
			reps = append(reps, keyFault(rep))
		}
	}
	return reps, classOf
}
