package fault

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/obs"
)

// QualityOptions size a multi-model test-quality evaluation.
type QualityOptions struct {
	// NDetect, when >1, also reports n-detect stuck-at coverage.
	NDetect int
	// BridgeSample is the number of random bridging faults to grade
	// (0 disables the bridge pass — it simulates serially).
	BridgeSample int
	// PathPairs is the number of gate-hop path segments to grade for
	// robust delay testing (0 disables).
	PathPairs int
	// Seed drives the bridge/path sampling.
	Seed int64
	// Progress forwards the stuck-at pass's progress callback.
	Progress func(cycles, detected, remaining int)
	// Sink, when non-nil, receives a "quality" span with one child span
	// per graded fault model (stuck_at, transition, bridging,
	// path_delay), each ending with its timing and coverage counters.
	Sink obs.Sink
}

// QualityReport aggregates every supported fault model's coverage for
// one test — the one-stop answer to "how good is this self-test
// program".
type QualityReport struct {
	Vectors int

	StuckAt       *Result
	Transition    *TransitionResult
	NDetect       int
	NDetectCov    float64
	BridgeDet     int
	BridgeTotal   int
	PathDelay     *PathDelayResult
	PathDelayOpts int
}

// Quality grades a vector stream against stuck-at, transition and
// (sampled) bridging and path-delay fault models.
func Quality(n *logic.Netlist, vecs VectorSeq, opts QualityOptions) (*QualityReport, error) {
	rep := &QualityReport{Vectors: vecs.Len(), NDetect: opts.NDetect}
	root := obs.NewSpan(opts.Sink, "quality")
	defer root.End()

	sub := root.Child("stuck_at")
	sa, err := Simulate(n, vecs, SimOptions{NDetect: opts.NDetect, Progress: opts.Progress, Sink: opts.Sink})
	if err != nil {
		return nil, err
	}
	rep.StuckAt = sa
	if opts.NDetect > 1 {
		rep.NDetectCov = sa.NDetectCoverage(opts.NDetect)
	}
	sub.Add("detected", int64(sa.Detected()))
	sub.Add("faults", int64(len(sa.Faults)))
	sub.End()

	sub = root.Child("transition")
	td, err := SimulateTransitions(n, vecs, nil)
	if err != nil {
		return nil, err
	}
	rep.Transition = td
	sub.Add("detected", int64(td.Detected()))
	sub.Add("faults", int64(len(td.Faults)))
	sub.End()

	if opts.BridgeSample > 0 {
		sub = root.Child("bridging")
		bridges := RandomBridges(n, opts.BridgeSample, opts.Seed)
		rep.BridgeDet, rep.BridgeTotal = BridgeCoverage(n, vecs, bridges)
		sub.Add("detected", int64(rep.BridgeDet))
		sub.Add("faults", int64(rep.BridgeTotal))
		sub.End()
	}
	if opts.PathPairs > 0 {
		var paths []Path
		for _, out := range n.CombOrder() {
			g := n.Gate(out)
			if len(g.In) == 0 {
				continue
			}
			paths = append(paths, Path{Nets: []logic.NetID{g.In[0], out}})
			if len(paths) >= opts.PathPairs {
				break
			}
		}
		sub = root.Child("path_delay")
		pd, err := SimulatePathDelay(n, vecs, paths)
		if err != nil {
			return nil, err
		}
		rep.PathDelay = pd
		sub.Add("paths", int64(len(pd.Paths)))
		sub.End()
	}
	return rep, nil
}

// String renders the report as an aligned block.
func (r *QualityReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "test quality over %d vectors:\n", r.Vectors)
	fmt.Fprintf(&sb, "  stuck-at      %6.2f%%  (%d/%d collapsed faults)\n",
		100*r.StuckAt.Coverage(), r.StuckAt.Detected(), len(r.StuckAt.Faults))
	if r.NDetect > 1 {
		fmt.Fprintf(&sb, "  %d-detect      %6.2f%%\n", r.NDetect, 100*r.NDetectCov)
	}
	fmt.Fprintf(&sb, "  transition    %6.2f%%  (%d/%d, late-edge model)\n",
		100*r.Transition.Coverage(), r.Transition.Detected(), len(r.Transition.Faults))
	if r.BridgeTotal > 0 {
		fmt.Fprintf(&sb, "  bridging      %6.2f%%  (%d/%d sampled)\n",
			100*float64(r.BridgeDet)/float64(r.BridgeTotal), r.BridgeDet, r.BridgeTotal)
	}
	if r.PathDelay != nil {
		fmt.Fprintf(&sb, "  path delay    %6.2f%%  (robust, %d gate-hop targets)\n",
			100*r.PathDelay.Coverage(), 2*len(r.PathDelay.Paths))
	}
	return sb.String()
}
