package fault

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Path is a structural combinational path: a chain of nets from a frame
// source (primary input or flip-flop output) to a frame sink, each net
// driven by a gate reading the previous one.
type Path struct {
	Nets []logic.NetID
}

// String renders the path compactly.
func (p Path) String() string {
	if len(p.Nets) == 0 {
		return "path()"
	}
	return fmt.Sprintf("path(%d→%d, %d nets)", p.Nets[0], p.Nets[len(p.Nets)-1], len(p.Nets))
}

// LongestPaths extracts up to count structurally longest combinational
// paths (the critical paths a delay test targets — reference [5] of the
// paper synthesizes test programs for exactly these). Paths are traced
// back from the deepest nets through each gate's deepest input.
func LongestPaths(n *logic.Netlist, count int) []Path {
	order := n.CombOrder()
	level := make([]int32, n.NumNets())
	deepest := make([]logic.NetID, n.NumNets())
	for i := range deepest {
		deepest[i] = logic.InvalidNet
	}
	for _, id := range order {
		g := n.Gate(id)
		for _, in := range g.In {
			if level[in]+1 > level[id] {
				level[id] = level[in] + 1
				deepest[id] = in
			}
		}
	}
	// Endpoints sorted by depth, deepest first.
	ends := append([]logic.NetID(nil), order...)
	sort.Slice(ends, func(i, j int) bool { return level[ends[i]] > level[ends[j]] })
	var paths []Path
	for _, end := range ends {
		if len(paths) >= count {
			break
		}
		var nets []logic.NetID
		for id := end; id != logic.InvalidNet; id = deepest[id] {
			nets = append(nets, id)
		}
		// Reverse to source-first order.
		for i, j := 0, len(nets)-1; i < j; i, j = i+1, j-1 {
			nets[i], nets[j] = nets[j], nets[i]
		}
		if len(nets) < 2 {
			continue
		}
		paths = append(paths, Path{Nets: nets})
	}
	return paths
}

// PathDelayResult reports robust path-delay coverage: for each path and
// launch polarity, the first cycle pair that robustly tests it.
type PathDelayResult struct {
	Paths []Path
	// RisingAt[i]/FallingAt[i] give the capture cycle of the first
	// robust test of path i for a rising/falling launch, or −1.
	RisingAt, FallingAt []int32
	Cycles              int
}

// Coverage returns the fraction of (path, polarity) targets robustly
// tested.
func (r *PathDelayResult) Coverage() float64 {
	if len(r.Paths) == 0 {
		return 0
	}
	hit := 0
	for i := range r.Paths {
		if r.RisingAt[i] >= 0 {
			hit++
		}
		if r.FallingAt[i] >= 0 {
			hit++
		}
	}
	return float64(hit) / float64(2*len(r.Paths))
}

// SimulatePathDelay scans the fault-free simulation of the vector stream
// for cycle pairs that robustly test each path: the launch net
// transitions, every on-path net transitions accordingly (respecting
// gate inversions), and at every gate along the path the side inputs
// hold stable non-controlling values across both cycles — the classical
// robust sensitization condition. Capture at the path's sink counts as a
// test (the sink is a flip-flop D or output in a functional test, whose
// observation the surrounding program provides).
func SimulatePathDelay(n *logic.Netlist, vecs VectorSeq, paths []Path) (*PathDelayResult, error) {
	if len(n.Inputs()) > 64 {
		return nil, fmt.Errorf("fault: %d primary inputs exceed the 64 supported", len(n.Inputs()))
	}
	res := &PathDelayResult{
		Paths:     paths,
		RisingAt:  make([]int32, len(paths)),
		FallingAt: make([]int32, len(paths)),
		Cycles:    vecs.Len(),
	}
	for i := range paths {
		res.RisingAt[i] = -1
		res.FallingAt[i] = -1
	}
	s := logic.NewSimulator(n)
	inputs := n.Inputs()
	prev := make([]bool, n.NumNets())
	cur := make([]bool, n.NumNets())
	havePrev := false
	remaining := 2 * len(paths)
	for cyc := 0; cyc < vecs.Len() && remaining > 0; cyc++ {
		v := vecs.At(cyc)
		for b, in := range inputs {
			s.SetInput(in, v>>uint(b)&1 == 1)
		}
		s.Settle()
		for id := 0; id < n.NumNets(); id++ {
			cur[id] = s.Value(logic.NetID(id))
		}
		if havePrev {
			for pi := range paths {
				if res.RisingAt[pi] >= 0 && res.FallingAt[pi] >= 0 {
					continue
				}
				rising, ok := robustTest(n, paths[pi], prev, cur)
				if !ok {
					continue
				}
				if rising && res.RisingAt[pi] < 0 {
					res.RisingAt[pi] = int32(cyc)
					remaining--
				}
				if !rising && res.FallingAt[pi] < 0 {
					res.FallingAt[pi] = int32(cyc)
					remaining--
				}
			}
		}
		prev, cur = cur, prev
		havePrev = true
		s.ClockAfterSettle()
	}
	return res, nil
}

// robustTest checks whether the cycle pair (prev, cur) robustly tests
// the path, returning the launch polarity at the path head.
func robustTest(n *logic.Netlist, p Path, prev, cur []bool) (rising bool, ok bool) {
	head := p.Nets[0]
	if prev[head] == cur[head] {
		return false, false // no launch
	}
	rising = cur[head]
	// Walk the path: each step enters a gate through the on-path input;
	// the transition must propagate (value toggles, possibly inverted)
	// and side inputs must be stable non-controlling.
	for step := 1; step < len(p.Nets); step++ {
		onPathIn := p.Nets[step-1]
		out := p.Nets[step]
		if prev[out] == cur[out] {
			return false, false // transition died
		}
		g := n.Gate(out)
		var ctrl bool
		var hasCtrl bool
		switch g.Kind {
		case logic.GateAnd, logic.GateNand:
			ctrl, hasCtrl = false, true
		case logic.GateOr, logic.GateNor:
			ctrl, hasCtrl = true, true
		case logic.GateBuf, logic.GateNot, logic.GateXor, logic.GateXnor:
			hasCtrl = false
		case logic.GateMux2:
			// Robust only when the select is stable and routes the
			// on-path data input (a transition through the select is
			// treated as non-robust).
			sel := g.In[0]
			if onPathIn == sel {
				return false, false
			}
			if prev[sel] != cur[sel] {
				return false, false
			}
			want := g.In[1]
			if cur[sel] {
				want = g.In[2]
			}
			if want != onPathIn {
				return false, false
			}
			continue
		default:
			return false, false
		}
		for _, in := range g.In {
			if in == onPathIn {
				continue
			}
			if hasCtrl {
				// Side inputs stable at the non-controlling value.
				if prev[in] != cur[in] || cur[in] == ctrl {
					return false, false
				}
			} else {
				// XOR-class gates: side inputs merely stable.
				if prev[in] != cur[in] {
					return false, false
				}
			}
		}
	}
	return rising, true
}
