package fault

import "math"

// CurvePoint is one (test length, coverage) sample.
type CurvePoint struct {
	Cycle    int
	Coverage float64
}

// Curve samples the coverage-vs-test-length curve of a finished run at
// the given cycle counts (pass nil for a geometric default sweep).
func (r *Result) Curve(cycles []int) []CurvePoint {
	if cycles == nil {
		for v := 64; v < r.Cycles; v *= 2 {
			cycles = append(cycles, v)
		}
		cycles = append(cycles, r.Cycles)
	}
	out := make([]CurvePoint, 0, len(cycles))
	for _, c := range cycles {
		out = append(out, CurvePoint{Cycle: c, Coverage: r.CoverageAt(c)})
	}
	return out
}

// SaturationModel is the classical two-population coverage model
//
//	coverage(t) = Cmax − A·exp(−t/Tau)
//
// fitted to a run's curve: Cmax is the asymptotic coverage (bounded by
// the untestable residue), Tau the detection time constant. It answers
// the paper's Phase-3 question — how long must the loop run for a target
// coverage — without simulating every candidate length.
type SaturationModel struct {
	Cmax float64
	A    float64
	Tau  float64
}

// FitSaturation fits the model to a run by fixing Cmax slightly above
// the final measured coverage and least-squares fitting log(Cmax − c(t))
// against t on a geometric sample of the curve.
func (r *Result) FitSaturation() SaturationModel {
	final := r.Coverage()
	cmax := final + (1-final)*0.05
	if cmax <= final {
		cmax = final + 1e-6
	}
	var sx, sy, sxx, sxy float64
	n := 0.0
	for v := 16; v <= r.Cycles; v *= 2 {
		c := r.CoverageAt(v)
		gap := cmax - c
		if gap <= 0 {
			continue
		}
		x, y := float64(v), math.Log(gap)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	m := SaturationModel{Cmax: cmax}
	if n < 2 {
		m.A = cmax - r.CoverageAt(0)
		m.Tau = float64(r.Cycles)
		return m
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	// A flat tail (everything detected early, constant residual gap)
	// fits a near-zero slope; clamp Tau to a meaningful horizon.
	maxTau := 100 * float64(r.Cycles)
	if slope >= -1/maxTau {
		slope = -1 / maxTau
	}
	m.Tau = -1 / slope
	m.A = math.Exp(intercept)
	return m
}

// Coverage evaluates the model at test length t.
func (m SaturationModel) Coverage(t float64) float64 {
	c := m.Cmax - m.A*math.Exp(-t/m.Tau)
	if c < 0 {
		return 0
	}
	return c
}

// LengthFor returns the estimated test length reaching the target
// coverage, or -1 if the model saturates below it.
func (m SaturationModel) LengthFor(target float64) float64 {
	if target >= m.Cmax {
		return -1
	}
	return -m.Tau * math.Log((m.Cmax-target)/m.A)
}
