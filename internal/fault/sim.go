package fault

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/obs"
)

// Default-registry counters for the simulator's hot loop. Handles are
// cached once; each segment costs two atomic adds.
var (
	ctrRuns    = obs.Default().Counter("faultsim.runs")
	ctrVectors = obs.Default().Counter("faultsim.vectors")
	ctrDropped = obs.Default().Counter("faultsim.faults_dropped")
)

// VectorSeq supplies one primary-input assignment per clock cycle.
// Bit i of At(cycle) drives Netlist.Inputs()[i]; circuits with more than
// 64 primary inputs are not supported by the simulator.
type VectorSeq interface {
	Len() int
	At(cycle int) uint64
}

// Vectors is the simplest VectorSeq: a pre-expanded slice.
type Vectors []uint64

// Len returns the number of cycles.
func (v Vectors) Len() int { return len(v) }

// At returns the packed input assignment for a cycle.
func (v Vectors) At(i int) uint64 { return v[i] }

// FuncSeq adapts a generator function to a VectorSeq. The function must
// be deterministic in the cycle index because segments are replayed once
// per fault batch.
type FuncSeq struct {
	N  int
	Fn func(cycle int) uint64
}

// Len returns the number of cycles.
func (f FuncSeq) Len() int { return f.N }

// At returns the packed input assignment for a cycle.
func (f FuncSeq) At(i int) uint64 { return f.Fn(i) }

// SimOptions tune Simulate.
type SimOptions struct {
	// Faults to simulate. Nil means the collapsed full fault list.
	Faults []Fault
	// SegmentLen is the number of cycles between drop/repack boundaries.
	// Zero selects the default (1024).
	SegmentLen int
	// NDetect keeps simulating each fault until it has produced an
	// output difference in NDetect distinct cycles (or the vectors run
	// out), filling Result.Detections — the n-detect test-quality
	// metric. Zero or one selects ordinary first-detection dropping.
	NDetect int
	// Progress, when non-nil, is called after each segment with the
	// number of cycles consumed and faults detected so far.
	Progress func(cycles, detected, remaining int)
	// Sink, when non-nil, receives a structured event stream: one
	// obs.EventSegment per drop/repack boundary (fields done, total,
	// detected, remaining, coverage) and a final obs.EventSummary, plus
	// a "faultsim" span whose end carries wall time and counters. It
	// subsumes Progress for machine consumers.
	Sink obs.Sink
	// Ctx, when non-nil, is polled at segment boundaries: once
	// cancelled, the run stops early and returns the partial Result
	// with Interrupted set (no error), so callers can still report the
	// coverage reached before a SIGINT or deadline.
	Ctx context.Context
}

// Result reports a fault simulation run.
type Result struct {
	// Faults is the simulated fault list (collapsed representatives).
	Faults []Fault
	// DetectedAt[i] is the 0-based cycle where Faults[i] first produced
	// an output difference, or -1 if it was never detected.
	DetectedAt []int32
	// Detections[i] counts the distinct cycles with an output difference
	// for Faults[i], saturated at SimOptions.NDetect. Nil unless NDetect
	// was requested.
	Detections []int32
	// Cycles is the total number of vectors applied (less than the
	// sequence length when the run was interrupted).
	Cycles int
	// Interrupted reports that SimOptions.Ctx was cancelled before the
	// vector sequence was exhausted; the other fields describe the
	// partial run.
	Interrupted bool
}

// NDetectCoverage returns the fraction of faults detected in at least n
// distinct cycles (requires a run with SimOptions.NDetect >= n).
func (r *Result) NDetectCoverage(n int) float64 {
	if len(r.Faults) == 0 || r.Detections == nil {
		return 0
	}
	c := 0
	for _, d := range r.Detections {
		if int(d) >= n {
			c++
		}
	}
	return float64(c) / float64(len(r.Faults))
}

// Detected counts detected faults.
func (r *Result) Detected() int {
	d := 0
	for _, c := range r.DetectedAt {
		if c >= 0 {
			d++
		}
	}
	return d
}

// Coverage returns detected/total over the simulated fault list.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.Detected()) / float64(len(r.Faults))
}

// DetectedBy counts faults detected at or before the given cycle,
// enabling coverage-vs-test-length curves from a single run.
func (r *Result) DetectedBy(cycle int) int {
	d := 0
	for _, c := range r.DetectedAt {
		if c >= 0 && int(c) <= cycle {
			d++
		}
	}
	return d
}

// CoverageAt returns the coverage achieved by the given cycle.
func (r *Result) CoverageAt(cycle int) float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.DetectedBy(cycle)) / float64(len(r.Faults))
}

// FirstCycleReaching returns the earliest cycle by which at least k
// faults are detected, or -1 if the run never reaches k.
func (r *Result) FirstCycleReaching(k int) int {
	if k <= 0 {
		return 0
	}
	// Collect detection cycles and take the k-th smallest.
	cycles := make([]int, 0, len(r.DetectedAt))
	for _, c := range r.DetectedAt {
		if c >= 0 {
			cycles = append(cycles, int(c))
		}
	}
	if len(cycles) < k {
		return -1
	}
	sort.Ints(cycles)
	return cycles[k-1]
}

// RegionCoverage returns detected and total counts restricted to faults
// whose site lies inside the named region.
func (r *Result) RegionCoverage(n *logic.Netlist, region string) (detected, total int) {
	nets := n.RegionNets(region)
	inRegion := make(map[logic.NetID]bool, len(nets))
	for _, id := range nets {
		inRegion[id] = true
	}
	for i, f := range r.Faults {
		if !inRegion[f.Site] {
			continue
		}
		total++
		if r.DetectedAt[i] >= 0 {
			detected++
		}
	}
	return detected, total
}

// Simulate runs sequential stuck-at fault simulation of the vector
// sequence against the netlist, starting every machine (good and faulty)
// from the all-zero flip-flop state.
func Simulate(n *logic.Netlist, vecs VectorSeq, opts SimOptions) (*Result, error) {
	inputs := n.Inputs()
	if len(inputs) > 64 {
		return nil, fmt.Errorf("fault: %d primary inputs exceed the 64 supported", len(inputs))
	}
	faults := opts.Faults
	if faults == nil {
		faults, _ = Collapse(n, AllFaults(n))
	}
	segLen := opts.SegmentLen
	if segLen <= 0 {
		segLen = 1024
	}
	w := logic.NewWordSim(n)
	stateWords := w.StateWords()

	ndet := opts.NDetect
	if ndet < 1 {
		ndet = 1
	}
	res := &Result{
		Faults:     faults,
		DetectedAt: make([]int32, len(faults)),
		Cycles:     vecs.Len(),
	}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}
	counts := make([]int32, len(faults))
	if opts.NDetect > 1 {
		res.Detections = counts
	}

	// states[k] is the saved DFF state at the current segment boundary
	// of fault remaining[k], all slices carved from one flat backing
	// allocation. Survivors are compacted to the front of the array at
	// each boundary, so detected faults stop carrying state and late
	// segments touch a shrinking prefix of the backing memory.
	backing := make([]uint64, len(faults)*stateWords)
	states := make([][]uint64, len(faults))
	for i := range states {
		states[i] = backing[i*stateWords : (i+1)*stateWords : (i+1)*stateWords]
	}
	goodState := make([]uint64, stateWords)
	nextGoodState := make([]uint64, stateWords)

	// remaining holds indices into faults still undetected.
	remaining := make([]int, len(faults))
	for i := range remaining {
		remaining[i] = i
	}

	ctrRuns.Add(1)
	span := obs.NewSpan(opts.Sink, "faultsim")
	total := vecs.Len()
	applied := 0
	for start := 0; start < total && len(remaining) > 0; start += segLen {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		end := start + segLen
		if end > total {
			end = total
		}
		goodSaved := false
		var survivors []int
		for batchStart := 0; batchStart < len(remaining); batchStart += 63 {
			batch := remaining[batchStart:min(batchStart+63, len(remaining))]
			w.Reset()
			w.SetLaneState(0, goodState)
			for li, fi := range batch {
				lane := uint(li + 1)
				w.SetLaneState(lane, states[batchStart+li])
				w.Inject(faults[fi].Site, faults[fi].SA1, lane)
			}
			w.ApplyInjectionsToValues()
			var doneMask uint64
			liveMask := uint64(1)<<uint(len(batch)+1) - 2 // lanes 1..len
			for cycle := start; cycle < end; cycle++ {
				vec := vecs.At(cycle)
				for bi, in := range inputs {
					w.SetInput(in, vec>>uint(bi)&1 == 1)
				}
				w.Settle()
				diff := w.OutputDiff() & liveMask &^ doneMask
				if diff != 0 {
					for li := range batch {
						if diff>>(uint(li)+1)&1 == 0 {
							continue
						}
						fi := batch[li]
						counts[fi]++
						if res.DetectedAt[fi] < 0 {
							res.DetectedAt[fi] = int32(cycle)
						}
						if counts[fi] >= int32(ndet) {
							doneMask |= 1 << uint(li+1)
						}
					}
					if doneMask == liveMask && end == total {
						// Whole batch done; rest of run irrelevant.
						break
					}
				}
				w.ClockAfterSettle()
			}
			if !goodSaved {
				w.LaneState(0, nextGoodState)
				goodSaved = true
			}
			for li, fi := range batch {
				if counts[fi] >= int32(ndet) {
					continue
				}
				// Compact: survivor k's state lands in slot k, which is
				// at or before this lane's old slot batchStart+li, so no
				// live state is overwritten.
				w.LaneState(uint(li+1), states[len(survivors)])
				survivors = append(survivors, fi)
			}
		}
		if len(remaining) == 0 {
			// No batches ran; still need the good state advanced. This
			// cannot happen inside the loop guard, but keep the invariant
			// explicit for future edits.
			panic("unreachable")
		}
		goodState, nextGoodState = nextGoodState, goodState
		dropped := len(remaining) - len(survivors)
		remaining = survivors
		applied = end
		ctrVectors.Add(int64(end - start))
		ctrDropped.Add(int64(dropped))
		span.Add("vectors", int64(end-start))
		span.Add("faults_dropped", int64(dropped))
		if opts.Progress != nil {
			opts.Progress(end, len(faults)-len(remaining), len(remaining))
		}
		span.Event(obs.EventSegment, map[string]any{
			"done":      end,
			"total":     total,
			"detected":  len(faults) - len(remaining),
			"remaining": len(remaining),
			"coverage":  safeRatio(len(faults)-len(remaining), len(faults)),
		})
	}
	if res.Interrupted {
		res.Cycles = applied
	}
	span.Event(obs.EventSummary, map[string]any{
		"cycles":      res.Cycles,
		"faults":      len(faults),
		"detected":    res.Detected(),
		"coverage":    res.Coverage(),
		"interrupted": res.Interrupted,
	})
	span.End()
	return res, nil
}

func safeRatio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
