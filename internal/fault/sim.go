package fault

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Default-registry counters for the simulator's hot loop. Handles are
// cached once; each segment costs a handful of atomic adds.
var (
	ctrRuns    = obs.Default().Counter("faultsim.runs")
	ctrVectors = obs.Default().Counter("faultsim.vectors")
	ctrDropped = obs.Default().Counter("faultsim.faults_dropped")
	// Gate-evaluation accounting (see docs/PERFORMANCE.md): gate_evals
	// counts evaluations actually executed; gate_evals_saved counts the
	// evaluations a full-frame sweep per batch cycle would have executed
	// on top of that. The reference kernel counts whole gates, the
	// compiled kernel counts compiled instructions (variadic gates span
	// several) — comparable to within the decomposition factor.
	ctrGateEvals      = obs.Default().Counter("faultsim.gate_evals")
	ctrGateEvalsSaved = obs.Default().Counter("faultsim.gate_evals_saved")
	// good_cycles counts fault-free machine cycles actually simulated to
	// fill a GoodTrace — zero when a run replays a trace recorded by an
	// earlier run (the artifact-cache hit path, see internal/artifacts).
	ctrGoodCycles = obs.Default().Counter("faultsim.good_cycles")
	// sweep_blocks counts cache-blocked sweep tiles executed by the
	// compiled kernel's dense-mode cycles (see logic.BlockSlots).
	ctrSweepBlocks = obs.Default().Counter("faultsim.sweep_blocks")

	// Per-kernel split of the same gate-evaluation tally, exposed on
	// /v1/metrics so a mixed fleet can attribute load to the kernel that
	// executed it.
	famKernelGateEvals = obs.Default().CounterFamily("sbst_kernel_gate_evals_total",
		"Gate evaluations executed, by simulation kernel.", "kernel")
	ctrGateEvalsRef      = famKernelGateEvals.Counter("reference")
	ctrGateEvalsCompiled = famKernelGateEvals.Counter("compiled")
)

// Kernel selects the simulation engine backing Simulate.
type Kernel int

const (
	// KernelCompiled (the default) runs the compiled event-driven kernel
	// with good-machine caching: the fault-free machine is simulated
	// once per segment into a logic.GoodTrace, and each 63-fault batch
	// replays only its fanout-cone logic against the trace
	// (logic.EventSim). Bit-identical to KernelReference.
	KernelCompiled Kernel = iota
	// KernelReference runs the original logic.WordSim full-sweep kernel:
	// every gate, every cycle, every batch. Kept as the differential
	// oracle and for debugging.
	KernelReference
)

// VectorSeq supplies one primary-input assignment per clock cycle.
// Bit i of At(cycle) drives Netlist.Inputs()[i]; circuits with more than
// 64 primary inputs are not supported by the simulator.
type VectorSeq interface {
	Len() int
	At(cycle int) uint64
}

// Vectors is the simplest VectorSeq: a pre-expanded slice.
type Vectors []uint64

// Len returns the number of cycles.
func (v Vectors) Len() int { return len(v) }

// At returns the packed input assignment for a cycle.
func (v Vectors) At(i int) uint64 { return v[i] }

// FuncSeq adapts a generator function to a VectorSeq. The function must
// be deterministic in the cycle index because segments are replayed once
// per fault batch.
type FuncSeq struct {
	N  int
	Fn func(cycle int) uint64
}

// Len returns the number of cycles.
func (f FuncSeq) Len() int { return f.N }

// At returns the packed input assignment for a cycle.
func (f FuncSeq) At(i int) uint64 { return f.Fn(i) }

// SimOptions tune Simulate.
type SimOptions struct {
	// Faults to simulate. Nil means the collapsed full fault list.
	Faults []Fault
	// SegmentLen is the number of cycles between drop/repack boundaries.
	// Zero selects the default (1024).
	SegmentLen int
	// NDetect keeps simulating each fault until it has produced an
	// output difference in NDetect distinct cycles (or the vectors run
	// out), filling Result.Detections — the n-detect test-quality
	// metric. Zero or one selects ordinary first-detection dropping.
	NDetect int
	// Progress, when non-nil, is called after each segment with the
	// number of cycles consumed and faults detected so far.
	Progress func(cycles, detected, remaining int)
	// Sink, when non-nil, receives a structured event stream: one
	// obs.EventSegment per drop/repack boundary (fields done, total,
	// detected, remaining, coverage) and a final obs.EventSummary, plus
	// a "faultsim" span whose end carries wall time and counters. It
	// subsumes Progress for machine consumers.
	Sink obs.Sink
	// Ctx, when non-nil, is polled at segment boundaries: once
	// cancelled, the run stops early and returns the partial Result
	// with Interrupted set (no error), so callers can still report the
	// coverage reached before a SIGINT or deadline.
	Ctx context.Context
	// Kernel selects the simulation engine; the zero value is the
	// compiled event-driven kernel. Both kernels produce bit-identical
	// Results.
	Kernel Kernel
	// LaneWords widens the compiled kernel's fault batches to 63 ×
	// LaneWords faults per cone replay (logic.EventSim value stripes of
	// LaneWords uint64 words per net). Zero auto-tunes from the fault
	// list size; values clamp to [1, logic.MaxLaneWords]. Results are
	// bit-identical at every width; the reference kernel ignores it.
	LaneWords int
	// Program, when non-nil, is a pre-compiled program for the netlist —
	// the content-addressed artifact reuse path (internal/artifacts).
	// Nil compiles on demand via logic.CompiledFor's per-netlist memo.
	Program *logic.Compiled
	// Trace, when non-nil, is a shared good-machine trace for exactly
	// this (netlist, vector sequence) pair, addressed by absolute cycle.
	// Recorded cycles are replayed without resimulating the fault-free
	// machine; missing cycles are filled in place and stay recorded for
	// later runs. The caller owns the pairing guarantee — a trace from
	// different vectors silently corrupts results — and must not share a
	// partially-filled trace across concurrent runs (a complete trace is
	// read-only and safe to share). Nil uses a run-local windowed trace.
	Trace *logic.GoodTrace
}

// Result reports a fault simulation run.
type Result struct {
	// Faults is the simulated fault list (collapsed representatives).
	Faults []Fault
	// DetectedAt[i] is the 0-based cycle where Faults[i] first produced
	// an output difference, or -1 if it was never detected.
	DetectedAt []int32
	// Detections[i] counts the distinct cycles with an output difference
	// for Faults[i], saturated at SimOptions.NDetect. Nil unless NDetect
	// was requested.
	Detections []int32
	// Cycles is the total number of vectors applied (less than the
	// sequence length when the run was interrupted).
	Cycles int
	// Interrupted reports that SimOptions.Ctx was cancelled before the
	// vector sequence was exhausted; the other fields describe the
	// partial run.
	Interrupted bool
}

// NDetectCoverage returns the fraction of faults detected in at least n
// distinct cycles (requires a run with SimOptions.NDetect >= n).
func (r *Result) NDetectCoverage(n int) float64 {
	if len(r.Faults) == 0 || r.Detections == nil {
		return 0
	}
	c := 0
	for _, d := range r.Detections {
		if int(d) >= n {
			c++
		}
	}
	return float64(c) / float64(len(r.Faults))
}

// Detected counts detected faults.
func (r *Result) Detected() int {
	d := 0
	for _, c := range r.DetectedAt {
		if c >= 0 {
			d++
		}
	}
	return d
}

// Coverage returns detected/total over the simulated fault list.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.Detected()) / float64(len(r.Faults))
}

// DetectedBy counts faults detected at or before the given cycle,
// enabling coverage-vs-test-length curves from a single run.
func (r *Result) DetectedBy(cycle int) int {
	d := 0
	for _, c := range r.DetectedAt {
		if c >= 0 && int(c) <= cycle {
			d++
		}
	}
	return d
}

// CoverageAt returns the coverage achieved by the given cycle.
func (r *Result) CoverageAt(cycle int) float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.DetectedBy(cycle)) / float64(len(r.Faults))
}

// FirstCycleReaching returns the earliest cycle by which at least k
// faults are detected, or -1 if the run never reaches k.
func (r *Result) FirstCycleReaching(k int) int {
	if k <= 0 {
		return 0
	}
	// Collect detection cycles and select the k-th smallest — O(n)
	// expected, versus sorting the whole list per query.
	cycles := make([]int32, 0, len(r.DetectedAt))
	for _, c := range r.DetectedAt {
		if c >= 0 {
			cycles = append(cycles, c)
		}
	}
	if len(cycles) < k {
		return -1
	}
	return int(quickselect(cycles, k-1))
}

// quickselect returns the k-th smallest (0-based) element of s,
// partitioning in place. Hoare partition with median-of-three pivoting;
// expected linear time.
func quickselect(s []int32, k int) int32 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot, placed at s[lo].
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if s[i] >= pivot {
					break
				}
			}
			for {
				j--
				if s[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		// Hoare invariant: s[lo..j] <= pivot <= s[j+1..hi].
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return s[lo]
}

// RegionCoverage returns detected and total counts restricted to faults
// whose site lies inside the named region.
func (r *Result) RegionCoverage(n *logic.Netlist, region string) (detected, total int) {
	nets := n.RegionNets(region)
	inRegion := make(map[logic.NetID]bool, len(nets))
	for _, id := range nets {
		inRegion[id] = true
	}
	for i, f := range r.Faults {
		if !inRegion[f.Site] {
			continue
		}
		total++
		if r.DetectedAt[i] >= 0 {
			detected++
		}
	}
	return detected, total
}

// Simulate runs sequential stuck-at fault simulation of the vector
// sequence against the netlist, starting every machine (good and faulty)
// from the all-zero flip-flop state, on the kernel selected by
// opts.Kernel (the compiled event-driven kernel by default; both kernels
// produce bit-identical results).
func Simulate(n *logic.Netlist, vecs VectorSeq, opts SimOptions) (*Result, error) {
	if len(n.Inputs()) > 64 {
		return nil, fmt.Errorf("fault: %d primary inputs exceed the 64 supported", len(n.Inputs()))
	}
	if opts.Kernel == KernelReference {
		return simulateReference(n, vecs, opts), nil
	}
	return simulateCompiled(n, vecs, opts), nil
}

// simRun is the kernel-independent run state: the fault list, result
// accumulators, the per-fault saved DFF state (survivor-compacted at
// each segment boundary) and the memoized segment vector buffer.
type simRun struct {
	faults []Fault
	segLen int
	ndet   int
	res    *Result
	counts []int32

	// states[k] is the saved DFF state at the current segment boundary
	// of fault remaining[k], all slices carved from one flat backing
	// allocation. Survivors are compacted to the front of the array at
	// each boundary, so detected faults stop carrying state and late
	// segments touch a shrinking prefix of the backing memory.
	states [][]uint64
	// remaining holds indices into faults still undetected.
	remaining []int

	segVecs []uint64
}

func newSimRun(n *logic.Netlist, vecs VectorSeq, opts SimOptions, stateWords int) *simRun {
	faults := opts.Faults
	if faults == nil {
		faults, _ = Collapse(n, AllFaults(n))
	}
	segLen := opts.SegmentLen
	if segLen <= 0 {
		segLen = 1024
	}
	ndet := opts.NDetect
	if ndet < 1 {
		ndet = 1
	}
	res := &Result{
		Faults:     faults,
		DetectedAt: make([]int32, len(faults)),
		Cycles:     vecs.Len(),
	}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}
	counts := make([]int32, len(faults))
	if opts.NDetect > 1 {
		res.Detections = counts
	}
	backing := make([]uint64, len(faults)*stateWords)
	states := make([][]uint64, len(faults))
	for i := range states {
		states[i] = backing[i*stateWords : (i+1)*stateWords : (i+1)*stateWords]
	}
	remaining := make([]int, len(faults))
	for i := range remaining {
		remaining[i] = i
	}
	return &simRun{
		faults:    faults,
		segLen:    segLen,
		ndet:      ndet,
		res:       res,
		counts:    counts,
		states:    states,
		remaining: remaining,
		segVecs:   make([]uint64, 0, segLen),
	}
}

// expandSegment memoizes the vectors of segment [start, end) so
// VectorSeq.At (and any user FuncSeq.Fn) runs once per cycle per
// segment rather than once per 63-fault batch replay.
func (r *simRun) expandSegment(vecs VectorSeq, start, end int) []uint64 {
	r.segVecs = r.segVecs[:0]
	for c := start; c < end; c++ {
		r.segVecs = append(r.segVecs, vecs.At(c))
	}
	return r.segVecs
}

// finishSegment applies the common per-segment bookkeeping and
// telemetry after the survivors of segment [start, end) are known.
func (r *simRun) finishSegment(span *obs.Span, opts SimOptions, survivors []int, end, total int) {
	dropped := len(r.remaining) - len(survivors)
	r.remaining = survivors
	ctrVectors.Add(int64(len(r.segVecs)))
	ctrDropped.Add(int64(dropped))
	span.Add("vectors", int64(len(r.segVecs)))
	span.Add("faults_dropped", int64(dropped))
	if opts.Progress != nil {
		opts.Progress(end, len(r.faults)-len(r.remaining), len(r.remaining))
	}
	span.Event(obs.EventSegment, map[string]any{
		"done":      end,
		"total":     total,
		"detected":  len(r.faults) - len(r.remaining),
		"remaining": len(r.remaining),
		"coverage":  safeRatio(len(r.faults)-len(r.remaining), len(r.faults)),
	})
}

// finish emits the run summary and returns the result.
func (r *simRun) finish(span *obs.Span, applied int) *Result {
	if r.res.Interrupted {
		r.res.Cycles = applied
	}
	span.Event(obs.EventSummary, map[string]any{
		"cycles":      r.res.Cycles,
		"faults":      len(r.faults),
		"detected":    r.res.Detected(),
		"coverage":    r.res.Coverage(),
		"interrupted": r.res.Interrupted,
	})
	span.End()
	return r.res
}

// simulateReference is the original full-sweep WordSim kernel, kept as
// the differential oracle for the compiled kernel (see kernel.go).
func simulateReference(n *logic.Netlist, vecs VectorSeq, opts SimOptions) *Result {
	inputs := n.Inputs()
	w := logic.NewWordSim(n)
	r := newSimRun(n, vecs, opts, w.StateWords())
	goodState := make([]uint64, w.StateWords())
	nextGoodState := make([]uint64, w.StateWords())
	gatesPerSettle := int64(len(n.CombOrder()))

	ctrRuns.Add(1)
	span := obs.NewSpan(opts.Sink, "faultsim")
	total := vecs.Len()
	applied := 0
	for start := 0; start < total && len(r.remaining) > 0; start += r.segLen {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			r.res.Interrupted = true
			break
		}
		// Chaos point: same boundary as the compiled kernel, so chaos
		// campaigns can stall or crash either engine.
		if f := chaos.Maybe("fault.segment"); f != nil {
			f.PanicNow()
			f.Sleep(opts.Ctx)
		}
		end := start + r.segLen
		if end > total {
			end = total
		}
		segVecs := r.expandSegment(vecs, start, end)
		goodSaved := false
		var segEvals int64
		var survivors []int
		for batchStart := 0; batchStart < len(r.remaining); batchStart += 63 {
			batch := r.remaining[batchStart:min(batchStart+63, len(r.remaining))]
			w.Reset()
			w.SetLaneState(0, goodState)
			for li, fi := range batch {
				lane := uint(li + 1)
				w.SetLaneState(lane, r.states[batchStart+li])
				w.Inject(r.faults[fi].Site, r.faults[fi].SA1, lane)
			}
			w.ApplyInjectionsToValues()
			var doneMask uint64
			liveMask := uint64(1)<<uint(len(batch)+1) - 2 // lanes 1..len
			for rc, vec := range segVecs {
				cycle := start + rc
				for bi, in := range inputs {
					w.SetInput(in, vec>>uint(bi)&1 == 1)
				}
				w.Settle()
				segEvals += gatesPerSettle
				diff := w.OutputDiff() & liveMask &^ doneMask
				if diff != 0 {
					for li := range batch {
						if diff>>(uint(li)+1)&1 == 0 {
							continue
						}
						fi := batch[li]
						r.counts[fi]++
						if r.res.DetectedAt[fi] < 0 {
							r.res.DetectedAt[fi] = int32(cycle)
						}
						if r.counts[fi] >= int32(r.ndet) {
							doneMask |= 1 << uint(li+1)
						}
					}
					if doneMask == liveMask && end == total {
						// Whole batch done; rest of run irrelevant.
						break
					}
				}
				w.ClockAfterSettle()
			}
			if !goodSaved {
				w.LaneState(0, nextGoodState)
				goodSaved = true
			}
			for li, fi := range batch {
				if r.counts[fi] >= int32(r.ndet) {
					continue
				}
				// Compact: survivor k's state lands in slot k, which is
				// at or before this lane's old slot batchStart+li, so no
				// live state is overwritten.
				w.LaneState(uint(li+1), r.states[len(survivors)])
				survivors = append(survivors, fi)
			}
		}
		goodState, nextGoodState = nextGoodState, goodState
		applied = end
		ctrGateEvals.Add(segEvals)
		ctrGateEvalsRef.Add(segEvals)
		span.Add("gate_evals", segEvals)
		span.Add("gate_evals_saved", 0)
		r.finishSegment(span, opts, survivors, end, total)
	}
	return r.finish(span, applied)
}

func safeRatio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
