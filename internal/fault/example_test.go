package fault_test

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
)

// Example runs stuck-at fault simulation on a tiny circuit and prints
// its coverage: the end-to-end flow every experiment in this repository
// builds on.
func Example() {
	b := logic.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	b.MarkOutput(b.And(x, y), "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		panic(err)
	}
	// Exhaustive two-input vectors detect every collapsed fault.
	res, err := fault.Simulate(n, fault.Vectors{0b00, 0b01, 0b10, 0b11}, fault.SimOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("coverage: %.0f%% of %d faults\n", 100*res.Coverage(), len(res.Faults))
	// Output:
	// coverage: 100% of 4 faults
}

// ExampleDiagnose shows cause-effect diagnosis: given only a failing
// output trace, the true fault ranks first with an exact match.
func ExampleDiagnose() {
	b := logic.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	a := b.And(x, y)
	o := b.Or(x, y)
	b.MarkOutput(a, "and")
	b.MarkOutput(o, "or")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		panic(err)
	}
	vecs := fault.Vectors{0b00, 0b01, 0b10, 0b11}
	hidden := fault.Fault{Site: a, SA1: true}
	observed := fault.FaultTrace(n, vecs, hidden)

	cands, err := fault.Diagnose(n, vecs, observed, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("top candidate exact match: %v\n", cands[0].ExactMatch)
	fmt.Printf("true fault found: %v\n", cands[0].Fault == hidden)
	// Output:
	// top candidate exact match: true
	// true fault found: true
}
