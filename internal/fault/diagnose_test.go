package fault

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestDiagnoseFindsInjectedFault(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(120, 4, 77)
	faults, _ := Collapse(n, AllFaults(n))
	rng := rand.New(rand.NewSource(5))
	tested := 0
	for trial := 0; trial < 20 && tested < 8; trial++ {
		truth := faults[rng.Intn(len(faults))]
		observed := FaultTrace(n, vecs, truth)
		good := GoodTrace(n, vecs)
		same := true
		for i := range observed {
			if observed[i] != good[i] {
				same = false
				break
			}
		}
		if same {
			continue // fault not excited by this test; nothing to diagnose
		}
		tested++
		cands, err := Diagnose(n, vecs, observed, faults)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatalf("no candidates for %v", truth)
		}
		// The true fault (or an equivalent with identical behavior) must
		// rank first with an exact match.
		if !cands[0].ExactMatch {
			t.Fatalf("top candidate for %v is not exact: %+v", truth, cands[0])
		}
		found := false
		for _, c := range cands {
			if c.Fault == truth && c.ExactMatch {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("true fault %v missing from exact candidates", truth)
		}
	}
	if tested < 3 {
		t.Fatalf("only %d usable trials", tested)
	}
}

func TestDiagnosePassingMachine(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(50, 4, 3)
	observed := GoodTrace(n, vecs)
	cands, err := Diagnose(n, vecs, observed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cands != nil {
		t.Fatalf("passing machine produced candidates: %v", cands)
	}
}

func TestGoodTraceMatchesSimulator(t *testing.T) {
	n := buildAdder(t)
	vecs := randomVectors(40, 9, 9)
	trace := GoodTrace(n, vecs)
	s := logic.NewSimulator(n)
	for cyc := 0; cyc < vecs.Len(); cyc++ {
		v := vecs.At(cyc)
		for b, in := range n.Inputs() {
			s.SetInput(in, v>>uint(b)&1 == 1)
		}
		s.Settle()
		var word uint64
		for b, out := range n.Outputs() {
			if s.Value(out) {
				word |= 1 << uint(b)
			}
		}
		if word != trace[cyc] {
			t.Fatalf("cycle %d: %x vs %x", cyc, word, trace[cyc])
		}
		s.Step()
	}
}
