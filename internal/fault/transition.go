package fault

import (
	"fmt"

	"repro/internal/logic"
)

// TransitionFault is a gross-delay (transition) fault: the net is too
// slow to rise or too slow to fall. The simulation model is the standard
// one-cycle-late-edge approximation: whenever the faulty machine's
// driver launches a transition in the slow direction, the net holds its
// previous value for that cycle (the edge arrives a cycle late), and the
// corrupted value propagates normally afterwards — including through
// flip-flops to later cycles. SBST programs run at functional speed, so
// they detect these faults with no extra hardware (at-speed testing).
type TransitionFault struct {
	Site       logic.NetID
	SlowToRise bool
}

// String renders the fault in str/stf convention.
func (f TransitionFault) String() string {
	kind := "stf"
	if f.SlowToRise {
		kind = "str"
	}
	return fmt.Sprintf("net%d/%s", f.Site, kind)
}

// AllTransitionFaults enumerates both transition polarities on every
// live, non-constant net.
func AllTransitionFaults(n *logic.Netlist) []TransitionFault {
	live := n.LiveNets()
	var out []TransitionFault
	for id := 0; id < n.NumNets(); id++ {
		switch n.Gate(logic.NetID(id)).Kind {
		case logic.GateConst0, logic.GateConst1:
			continue
		}
		if !live[id] {
			continue
		}
		out = append(out,
			TransitionFault{Site: logic.NetID(id), SlowToRise: true},
			TransitionFault{Site: logic.NetID(id), SlowToRise: false})
	}
	return out
}

// TransitionResult reports a transition-fault simulation.
type TransitionResult struct {
	Faults []TransitionFault
	// DetectedAt[i] is the cycle of the first output difference, or −1.
	DetectedAt []int32
	Cycles     int
}

// Detected counts detected faults.
func (r *TransitionResult) Detected() int {
	d := 0
	for _, c := range r.DetectedAt {
		if c >= 0 {
			d++
		}
	}
	return d
}

// Coverage returns detected/total.
func (r *TransitionResult) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.Detected()) / float64(len(r.Faults))
}

// CoverageAt returns the coverage achieved by the given cycle.
func (r *TransitionResult) CoverageAt(cycle int) float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	d := 0
	for _, c := range r.DetectedAt {
		if c >= 0 && int(c) <= cycle {
			d++
		}
	}
	return float64(d) / float64(len(r.Faults))
}

// SimulateTransitions runs transition-fault simulation: lane 0 is the
// fault-free machine and up to 63 faulty machines share each pass, each
// evolving its own state. Per cycle the frame settles twice: once
// without forcing, to see which faulty machines launch a slow-direction
// edge at their site (relative to the site's previous driven value in
// that lane), and once with those lanes' sites held at the previous
// value. Detected faults drop out at segment boundaries, with per-fault
// flip-flop state and previous-driven bits carried across.
func SimulateTransitions(n *logic.Netlist, vecs VectorSeq, faults []TransitionFault) (*TransitionResult, error) {
	if len(n.Inputs()) > 64 {
		return nil, fmt.Errorf("fault: %d primary inputs exceed the 64 supported", len(n.Inputs()))
	}
	if faults == nil {
		faults = AllTransitionFaults(n)
	}
	const segLen = 1024
	// The two-pass settle injects and clears forcings dynamically, so the
	// event-driven kernel does not apply here, but the compiled full-sweep
	// simulator is a drop-in for WordSim.
	w := logic.NewCompiledSim(logic.CompiledFor(n))
	stateWords := w.StateWords()
	inputs := n.Inputs()

	res := &TransitionResult{
		Faults:     faults,
		DetectedAt: make([]int32, len(faults)),
		Cycles:     vecs.Len(),
	}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}

	states := make([][]uint64, len(faults))
	for i := range states {
		states[i] = make([]uint64, stateWords)
	}
	prevDriven := make([]bool, len(faults))
	goodState := make([]uint64, stateWords)
	nextGoodState := make([]uint64, stateWords)
	remaining := make([]int, len(faults))
	for i := range remaining {
		remaining[i] = i
	}

	total := vecs.Len()
	first := true
	segVecs := make([]uint64, 0, segLen)
	for start := 0; start < total && len(remaining) > 0; start += segLen {
		end := start + segLen
		if end > total {
			end = total
		}
		// Memoize the segment's vectors once for all batch replays.
		segVecs = segVecs[:0]
		for c := start; c < end; c++ {
			segVecs = append(segVecs, vecs.At(c))
		}
		goodSaved := false
		var survivors []int
		for batchStart := 0; batchStart < len(remaining); batchStart += 63 {
			batch := remaining[batchStart:min(batchStart+63, len(remaining))]
			w.Reset()
			w.SetLaneState(0, goodState)
			for li, fi := range batch {
				w.SetLaneState(uint(li+1), states[fi])
			}
			prev := make([]bool, len(batch)) // per-lane previous driven value at site
			havePrev := !first
			for li, fi := range batch {
				prev[li] = prevDriven[fi]
			}

			var detectedMask uint64
			liveMask := uint64(1)<<uint(len(batch)+1) - 2
			for rc, vec := range segVecs {
				cycle := start + rc
				for bi, in := range inputs {
					w.SetInput(in, vec>>uint(bi)&1 == 1)
				}
				// Pass 1: free-running settle to read each lane's driven
				// site value.
				w.Settle()
				for li, fi := range batch {
					f := faults[fi]
					driven := w.Word(f.Site)>>uint(li+1)&1 == 1
					if havePrev && driven != prev[li] && driven == f.SlowToRise {
						// Slow edge: the net shows the old value this cycle.
						w.Inject(f.Site, prev[li], uint(li+1))
					}
					prev[li] = driven
				}
				havePrev = true
				// Pass 2: settle with the late-edge forcing in place.
				w.ApplyInjectionsToValues()
				w.Settle()
				diff := w.OutputDiff() & liveMask &^ detectedMask
				if diff != 0 {
					for li := range batch {
						if diff>>(uint(li)+1)&1 == 1 {
							res.DetectedAt[batch[li]] = int32(cycle)
						}
					}
					detectedMask |= diff
				}
				w.ClockAfterSettle()
				w.ClearInjections()
			}
			if !goodSaved {
				w.LaneState(0, nextGoodState)
				goodSaved = true
			}
			for li, fi := range batch {
				prevDriven[fi] = prev[li]
				if res.DetectedAt[fi] >= 0 {
					continue
				}
				w.LaneState(uint(li+1), states[fi])
				survivors = append(survivors, fi)
			}
		}
		goodState, nextGoodState = nextGoodState, goodState
		remaining = survivors
		first = false
	}
	return res, nil
}
