package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
)

// BridgeKind selects the resolution function of a two-net bridging
// fault.
type BridgeKind uint8

// Bridging fault kinds.
const (
	// BridgeAND: both nets read the AND of their driven values
	// (dominant-low short).
	BridgeAND BridgeKind = iota
	// BridgeOR: both nets read the OR (dominant-high short).
	BridgeOR
	// BridgeADominates: net B reads net A's value (A drives the short).
	BridgeADominates
)

// String names the kind.
func (k BridgeKind) String() string {
	switch k {
	case BridgeAND:
		return "AND"
	case BridgeOR:
		return "OR"
	}
	return "A-dom"
}

// Bridge is a two-net bridging fault.
type Bridge struct {
	A, B logic.NetID
	Kind BridgeKind
}

// String renders the bridge.
func (br Bridge) String() string {
	return fmt.Sprintf("bridge(%d,%d)/%s", br.A, br.B, br.Kind)
}

// RandomBridges samples candidate bridging faults between distinct
// live nets — the usual layout-less approximation when no extraction
// data exists. The sampler avoids pairing a net with one in its own
// combinational fanin cone (such bridges create feedback, which this
// zero-delay model cannot resolve).
func RandomBridges(n *logic.Netlist, count int, seed int64) []Bridge {
	live := n.LiveNets()
	var nets []logic.NetID
	for id := 0; id < n.NumNets(); id++ {
		switch n.Gate(logic.NetID(id)).Kind {
		case logic.GateConst0, logic.GateConst1, logic.GateInput:
			continue
		}
		if live[id] {
			nets = append(nets, logic.NetID(id))
		}
	}
	if len(nets) < 2 {
		return nil
	}
	// level[net]: topological level; a bridge between equal-level nets
	// can never be in each other's cone.
	level := make([]int32, n.NumNets())
	for _, id := range n.CombOrder() {
		g := n.Gate(id)
		for _, in := range g.In {
			if level[in]+1 > level[id] {
				level[id] = level[in] + 1
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Bridge
	for tries := 0; len(out) < count && tries < 50*count; tries++ {
		a := nets[rng.Intn(len(nets))]
		b := nets[rng.Intn(len(nets))]
		if a == b || level[a] != level[b] {
			continue
		}
		out = append(out, Bridge{A: a, B: b, Kind: BridgeKind(rng.Intn(3))})
	}
	return out
}

// SimulateBridge serially fault-simulates one bridging fault and returns
// the first cycle with an output difference, or -1. The bridge is
// evaluated zero-delay: after each settle, the resolution function is
// applied to both nets and downstream logic is re-settled, iterating to
// a fixed point (guaranteed for same-level bridges).
func SimulateBridge(n *logic.Netlist, vecs VectorSeq, br Bridge) int {
	good := logic.NewSimulator(n)
	bad := logic.NewBridgeSimulator(n, br.A, br.B, uint8(br.Kind))
	inputs := n.Inputs()
	for cyc := 0; cyc < vecs.Len(); cyc++ {
		v := vecs.At(cyc)
		for bi, in := range inputs {
			good.SetInput(in, v>>uint(bi)&1 == 1)
			bad.SetInput(in, v>>uint(bi)&1 == 1)
		}
		good.Settle()
		bad.Settle()
		for _, o := range n.Outputs() {
			if good.Value(o) != bad.Value(o) {
				return cyc
			}
		}
		good.Step()
		bad.Step()
	}
	return -1
}

// BridgeCoverage simulates a bridge list and returns the detected
// fraction.
func BridgeCoverage(n *logic.Netlist, vecs VectorSeq, bridges []Bridge) (detected int, total int) {
	for _, br := range bridges {
		total++
		if SimulateBridge(n, vecs, br) >= 0 {
			detected++
		}
	}
	return detected, total
}
