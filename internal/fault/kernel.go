package fault

import (
	"repro/internal/chaos"
	"repro/internal/logic"
	"repro/internal/obs"
)

// kernel.go is the compiled event-driven fault-simulation kernel
// (SimOptions.Kernel == KernelCompiled, the default).
//
// Per segment it simulates the fault-free machine exactly once on a
// logic.CompiledSim, recording every net's settled value per cycle into
// a logic.GoodTrace. Each 63-fault batch then replays the segment on a
// logic.EventSim, which evaluates only the batch's fanout-cone logic —
// everything outside the cone is read from the trace — so a batch pays
// for its diverged gates instead of the whole frame. The drop/repack
// segmentation, detection bookkeeping and telemetry match
// simulateReference cycle for cycle; the differential tests in this
// package and kernel_equiv_test.go at the repo root enforce
// bit-identical results.
func simulateCompiled(n *logic.Netlist, vecs VectorSeq, opts SimOptions) *Result {
	inputs := n.Inputs()
	c := logic.CompiledFor(n)
	good := logic.NewCompiledSim(c)
	ev := logic.NewEventSim(c)
	r := newSimRun(n, vecs, opts, good.StateWords())
	nextGoodState := make([]uint64, good.StateWords())

	total := vecs.Len()
	traceLen := r.segLen
	if total < traceLen {
		traceLen = total
	}
	trace := logic.NewGoodTrace(n.NumNets(), traceLen)

	batchFaults := make([]logic.BatchFault, 0, 63)
	laneStates := make([][]uint64, 0, 63)

	// Adaptive segmentation: results are segment-length-invariant (every
	// cycle of every batch replay checks detection), so segment length is
	// purely a scheduling choice. Short early segments repack survivors
	// while coverage ramps steeply — detected faults stop occupying batch
	// lanes within tens of cycles instead of replaying a full 1024-cycle
	// frame — and the length doubles toward segLen as drops become rare.
	// An explicit opts.SegmentLen pins the boundaries (the differential
	// fuzz tests rely on that to align both kernels' telemetry).
	adaptive := opts.SegmentLen <= 0
	curLen := r.segLen
	if adaptive && curLen > 64 {
		curLen = 64
	}

	ctrRuns.Add(1)
	span := obs.NewSpan(opts.Sink, "faultsim")
	applied := 0
	for start := 0; start < total && len(r.remaining) > 0; start = applied {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			r.res.Interrupted = true
			break
		}
		// Chaos point: a shard stall or crash at a segment boundary
		// (recovered and retried by engine.Simulate's shard supervisor).
		if f := chaos.Maybe("fault.segment"); f != nil {
			f.PanicNow()
			f.Sleep(opts.Ctx)
		}
		end := start + curLen
		if end > total {
			end = total
		}
		if adaptive && curLen < r.segLen {
			curLen *= 2
		}
		segVecs := r.expandSegment(vecs, start, end)

		// Good-machine pass: once per segment instead of once per batch.
		// The CompiledSim carries the fault-free DFF state across
		// segments (it is never injected), so no state reload is needed.
		trace.Reset(len(segVecs))
		for rc, vec := range segVecs {
			for bi, in := range inputs {
				good.SetInput(in, vec>>uint(bi)&1 == 1)
			}
			good.Settle()
			trace.Record(rc, good)
			good.ClockAfterSettle()
		}
		good.LaneState(0, nextGoodState)
		segEvals := good.TakeEvals()
		var segSaved int64

		var survivors []int
		for batchStart := 0; batchStart < len(r.remaining); batchStart += 63 {
			batch := r.remaining[batchStart:min(batchStart+63, len(r.remaining))]
			batchFaults = batchFaults[:0]
			laneStates = laneStates[:0]
			for li, fi := range batch {
				batchFaults = append(batchFaults, logic.BatchFault{
					Site: r.faults[fi].Site,
					SA1:  r.faults[fi].SA1,
				})
				laneStates = append(laneStates, r.states[batchStart+li])
			}
			ev.BeginBatch(batchFaults, trace, laneStates)
			var doneMask uint64
			liveMask := uint64(1)<<uint(len(batch)+1) - 2 // lanes 1..len
			for rc := range segVecs {
				diff := ev.Cycle(rc) & liveMask &^ doneMask
				if diff != 0 {
					for li := range batch {
						if diff>>(uint(li)+1)&1 == 0 {
							continue
						}
						fi := batch[li]
						r.counts[fi]++
						if r.res.DetectedAt[fi] < 0 {
							r.res.DetectedAt[fi] = int32(start + rc)
						}
						if r.counts[fi] >= int32(r.ndet) {
							doneMask |= 1 << uint(li+1)
							// The lane's result is final; retiring it lets
							// its divergence die out so later cycles pay
							// only for the still-live faults.
							ev.RetireLane(uint(li + 1))
						}
					}
					if doneMask == liveMask {
						// Whole batch done: no lane survives, so no lane
						// state will be read — safe to abandon the
						// segment replay early.
						break
					}
				}
				ev.Clock(rc)
			}
			for li, fi := range batch {
				if r.counts[fi] >= int32(r.ndet) {
					continue
				}
				// Compact (see simulateReference). Out-of-cone DFFs never
				// diverge, so the lane state is the good next state
				// overlaid with the cone's flip-flops.
				ev.LaneStateInto(uint(li+1), nextGoodState, r.states[len(survivors)])
				survivors = append(survivors, fi)
			}
			be, bs := ev.EndBatch()
			segEvals += be
			segSaved += bs
		}
		applied = end
		ctrGateEvals.Add(segEvals)
		ctrGateEvalsCompiled.Add(segEvals)
		ctrGateEvalsSaved.Add(segSaved)
		span.Add("gate_evals", segEvals)
		span.Add("gate_evals_saved", segSaved)
		r.finishSegment(span, opts, survivors, end, total)
	}
	return r.finish(span, applied)
}
