package fault

import (
	"repro/internal/chaos"
	"repro/internal/logic"
	"repro/internal/obs"
)

// kernel.go is the compiled event-driven fault-simulation kernel
// (SimOptions.Kernel == KernelCompiled, the default).
//
// Per segment it simulates the fault-free machine exactly once on a
// logic.CompiledSim, recording every net's settled value per cycle into
// a logic.GoodTrace — or, when the trace already holds the segment
// (SimOptions.Trace from the artifact cache), skips the good machine
// entirely. Each batch of up to 63×W faults (W = SimOptions.LaneWords)
// then replays the segment on a logic.EventSim, which evaluates only
// the batch's fanout-cone logic — everything outside the cone is read
// from the trace — so a batch pays for its diverged gates instead of
// the whole frame. The drop/repack segmentation, detection bookkeeping
// and telemetry match simulateReference cycle for cycle; the
// differential tests in this package and kernel_equiv_test.go at the
// repo root enforce bit-identical results at every lane width.
func simulateCompiled(n *logic.Netlist, vecs VectorSeq, opts SimOptions) *Result {
	inputs := n.Inputs()
	c := opts.Program
	if c == nil {
		c = logic.CompiledFor(n)
	}
	good := logic.NewCompiledSim(c)
	r := newSimRun(n, vecs, opts, good.StateWords())
	lw := opts.LaneWords
	if lw <= 0 {
		lw = autoLaneWords(len(r.faults))
	}
	if lw > logic.MaxLaneWords {
		lw = logic.MaxLaneWords
	}
	ev := logic.NewEventSim(c, lw)
	lw = ev.LaneWords()
	nextGoodState := make([]uint64, good.StateWords())

	total := vecs.Len()
	trace := opts.Trace
	pinned := trace != nil
	if pinned {
		// A pinned trace must span the whole run; complete traces are
		// already sized and this is a no-op read.
		trace.EnsureCycles(total)
	} else {
		traceLen := r.segLen
		if total < traceLen {
			traceLen = total
		}
		trace = logic.NewGoodTrace(n.NumNets(), traceLen)
	}

	batchCap := 63 * lw
	batchFaults := make([]logic.BatchFault, 0, batchCap)
	laneStates := make([][]uint64, 0, batchCap)
	det := make([]uint64, lw)
	doneMask := make([]uint64, lw)
	liveMask := make([]uint64, lw)

	// Adaptive segmentation: results are segment-length-invariant (every
	// cycle of every batch replay checks detection), so segment length is
	// purely a scheduling choice. Short early segments repack survivors
	// while coverage ramps steeply — detected faults stop occupying batch
	// lanes within tens of cycles instead of replaying a full 1024-cycle
	// frame — and the length doubles toward segLen as drops become rare.
	// An explicit opts.SegmentLen pins the boundaries (the differential
	// fuzz tests rely on that to align both kernels' telemetry).
	adaptive := opts.SegmentLen <= 0
	curLen := r.segLen
	if adaptive && curLen > 64 {
		curLen = 64
	}

	ctrRuns.Add(1)
	span := obs.NewSpan(opts.Sink, "faultsim")
	applied := 0
	for start := 0; start < total && len(r.remaining) > 0; start = applied {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			r.res.Interrupted = true
			break
		}
		// Chaos point: a shard stall or crash at a segment boundary
		// (recovered and retried by engine.Simulate's shard supervisor).
		if f := chaos.Maybe("fault.segment"); f != nil {
			f.PanicNow()
			f.Sleep(opts.Ctx)
		}
		end := start + curLen
		if end > total {
			end = total
		}
		if adaptive && curLen < r.segLen {
			curLen *= 2
		}
		segVecs := r.expandSegment(vecs, start, end)

		// Good-machine pass: once per segment instead of once per batch —
		// and not at all when a pinned trace already recorded it.
		var segEvals, segSaved int64
		if trace.ValidThrough() < end {
			if !pinned {
				trace.Window(start, len(segVecs))
			}
			fillTrace(good, inputs, trace, end,
				func(cyc int) uint64 { return segVecs[cyc-start] })
			segEvals = good.TakeEvals()
		}
		// The fault-free state entering the next segment, for survivor
		// compaction: the frontier right after a fill, a recorded row on
		// the pure-replay path.
		trace.StateInto(end, n.DFFs(), nextGoodState)

		var survivors []int
		for batchStart := 0; batchStart < len(r.remaining); batchStart += batchCap {
			batch := r.remaining[batchStart:min(batchStart+batchCap, len(r.remaining))]
			batchFaults = batchFaults[:0]
			laneStates = laneStates[:0]
			for li, fi := range batch {
				batchFaults = append(batchFaults, logic.BatchFault{
					Site: r.faults[fi].Site,
					SA1:  r.faults[fi].SA1,
				})
				laneStates = append(laneStates, r.states[batchStart+li])
			}
			ev.BeginBatch(batchFaults, trace, start, laneStates)
			nw := (len(batch) + 62) / 63
			for w := 0; w < nw; w++ {
				lanes := len(batch) - w*63
				if lanes > 63 {
					lanes = 63
				}
				liveMask[w] = uint64(1)<<uint(lanes+1) - 2 // lanes 1..lanes
				doneMask[w] = 0
			}
			done := 0
			for rc := range segVecs {
				ev.Cycle(start+rc, det)
				for w := 0; w < nw; w++ {
					diff := det[w] & liveMask[w] &^ doneMask[w]
					if diff == 0 {
						continue
					}
					for lane := uint(1); lane <= 63; lane++ {
						if diff>>lane&1 == 0 {
							continue
						}
						fi := batch[w*63+int(lane)-1]
						r.counts[fi]++
						if r.res.DetectedAt[fi] < 0 {
							r.res.DetectedAt[fi] = int32(start + rc)
						}
						if r.counts[fi] >= int32(r.ndet) {
							doneMask[w] |= 1 << lane
							done++
							// The lane's result is final; retiring it lets
							// its divergence die out so later cycles pay
							// only for the still-live faults.
							ev.RetireLane(w, lane)
						}
					}
				}
				if done == len(batch) {
					// Whole batch done: no lane survives, so no lane
					// state will be read — safe to abandon the
					// segment replay early.
					break
				}
				ev.Clock()
			}
			for li, fi := range batch {
				if r.counts[fi] >= int32(r.ndet) {
					continue
				}
				// Compact (see simulateReference). Out-of-cone DFFs never
				// diverge, so the lane state is the good next state
				// overlaid with the cone's flip-flops.
				ev.LaneStateInto(li/63, uint(1+li%63), nextGoodState, r.states[len(survivors)])
				survivors = append(survivors, fi)
			}
			be, bs, bb := ev.EndBatch()
			segEvals += be
			segSaved += bs
			ctrSweepBlocks.Add(bb)
		}
		applied = end
		ctrGateEvals.Add(segEvals)
		ctrGateEvalsCompiled.Add(segEvals)
		ctrGateEvalsSaved.Add(segSaved)
		span.Add("gate_evals", segEvals)
		span.Add("gate_evals_saved", segSaved)
		r.finishSegment(span, opts, survivors, end, total)
	}
	return r.finish(span, applied)
}

// autoLaneWords picks the default EventSim stripe width from the fault
// list size. One word handles a 63-fault list outright; wider stripes
// only pay once enough faults exist to fill them — below that the extra
// words are simulated but carry no lanes. The thresholds follow the
// BENCH_4 sweep (docs/PERFORMANCE.md): width 8 wins decisively on
// full-circuit fault lists (and width 16 regresses — the generic stripe
// loop loses what the extra lanes amortize), widths 2 and 4 cover the
// mid range where a wider stripe would run mostly-empty words.
// EffectiveLaneWords reports the stripe width a compiled-kernel run
// with these options uses on a fault list of the given size: the
// explicit LaneWords clamped to logic.MaxLaneWords, or the automatic
// width when unset. Benchmarks use it to label results with the width
// that actually ran.
func EffectiveLaneWords(opts SimOptions, numFaults int) int {
	lw := opts.LaneWords
	if lw <= 0 {
		lw = autoLaneWords(numFaults)
	}
	if lw > logic.MaxLaneWords {
		lw = logic.MaxLaneWords
	}
	return lw
}

func autoLaneWords(faults int) int {
	switch {
	case faults <= 63:
		return 1
	case faults <= 63*4:
		return 2
	case faults <= 63*8:
		return 4
	default:
		return 8
	}
}

// fillTrace extends trace's recorded prefix through absolute cycle end
// (exclusive): it seeds the fault-free machine from the trace frontier,
// simulates and records each missing cycle, and advances the frontier
// to end so the next fill (or a survivor-state query at the boundary)
// resumes without resimulation. at supplies the packed input vector for
// an absolute cycle.
func fillTrace(good *logic.CompiledSim, inputs []logic.NetID, trace *logic.GoodTrace, end int, at func(int) uint64) {
	v := trace.ValidThrough()
	fc, fstate := trace.Frontier()
	if fc != v {
		panic("fault: GoodTrace frontier out of sync with recorded prefix")
	}
	good.LoadState(fstate)
	for cyc := v; cyc < end; cyc++ {
		vec := at(cyc)
		for bi, in := range inputs {
			good.SetInput(in, vec>>uint(bi)&1 == 1)
		}
		good.Settle()
		trace.Record(cyc, good)
		good.ClockAfterSettle()
	}
	frontier := make([]uint64, good.StateWords())
	good.LaneState(0, frontier)
	trace.SetFrontier(end, frontier)
	ctrGoodCycles.Add(int64(end - v))
}

// FillGoodTrace records the fault-free machine's trace for vecs into
// trace through cycle end (clamped to the sequence length), resuming
// from whatever prefix is already recorded. The engine uses it to
// complete a shared artifact trace once, before fanning shards out —
// after which every run on the same (design, vectors) pair replays with
// zero good-machine cycles.
func FillGoodTrace(n *logic.Netlist, prog *logic.Compiled, vecs VectorSeq, trace *logic.GoodTrace, end int) {
	if end > vecs.Len() {
		end = vecs.Len()
	}
	if trace.ValidThrough() >= end {
		return
	}
	if prog == nil {
		prog = logic.CompiledFor(n)
	}
	trace.EnsureCycles(end)
	good := logic.NewCompiledSim(prog)
	fillTrace(good, n.Inputs(), trace, end, vecs.At)
	ctrGateEvals.Add(good.TakeEvals())
}
