package fault

import (
	"repro/internal/logic"
)

// ObservedTrace is a failing machine's primary-output record: one packed
// output word per cycle (bit i = Netlist.Outputs()[i]), strobed after
// settling and before the clock edge — the same strobe the simulator and
// testers use.
type ObservedTrace []uint64

// GoodTrace simulates the fault-free machine and returns its output
// trace (the tester's expected-response store).
func GoodTrace(n *logic.Netlist, vecs VectorSeq) ObservedTrace {
	s := logic.NewSimulator(n)
	inputs := n.Inputs()
	outputs := n.Outputs()
	trace := make(ObservedTrace, vecs.Len())
	for cyc := 0; cyc < vecs.Len(); cyc++ {
		v := vecs.At(cyc)
		for b, in := range inputs {
			s.SetInput(in, v>>uint(b)&1 == 1)
		}
		s.Settle()
		var word uint64
		for b, out := range outputs {
			if s.Value(out) {
				word |= 1 << uint(b)
			}
		}
		trace[cyc] = word
		s.Step()
	}
	return trace
}

// FaultTrace simulates one faulty machine's output trace.
func FaultTrace(n *logic.Netlist, vecs VectorSeq, f Fault) ObservedTrace {
	s := logic.NewSimulator(n)
	s.InjectFault(f.Site, f.SA1)
	inputs := n.Inputs()
	outputs := n.Outputs()
	trace := make(ObservedTrace, vecs.Len())
	for cyc := 0; cyc < vecs.Len(); cyc++ {
		v := vecs.At(cyc)
		for b, in := range inputs {
			s.SetInput(in, v>>uint(b)&1 == 1)
		}
		s.Settle()
		var word uint64
		for b, out := range outputs {
			if s.Value(out) {
				word |= 1 << uint(b)
			}
		}
		trace[cyc] = word
		s.Step()
	}
	return trace
}

// Candidate is one diagnosis hypothesis.
type Candidate struct {
	Fault Fault
	// ExactMatch reports whether the fault's simulated trace equals the
	// observed trace cycle for cycle.
	ExactMatch bool
	// MatchedFailures and MissedFailures count observed failing cycles
	// the hypothesis explains / fails to explain; Mispredicts counts
	// cycles the hypothesis fails but the observation passed.
	MatchedFailures, MissedFailures, Mispredicts int
}

// Score orders candidates: exact matches first, then by explained minus
// contradicted failures.
func (c Candidate) Score() int {
	s := c.MatchedFailures - c.MissedFailures - 2*c.Mispredicts
	if c.ExactMatch {
		s += 1 << 20
	}
	return s
}

// DiagnoseOptions tune Diagnose.
type DiagnoseOptions struct {
	// Presim, when non-nil, supplies the stage-1 first-detection result
	// for the candidate list — e.g. from engine.Simulate sharded across
	// every core — so Diagnose skips its own serial simulation. Its
	// Faults slice replaces the candidate list.
	Presim *Result
}

// Diagnose performs cause-effect single-stuck-at diagnosis: it simulates
// every candidate fault against the test and ranks candidates by how
// well their response matches the observed failing trace. This is the
// classical fault-dictionary flow a production test setup runs when a
// self-test signature mismatches and per-cycle data is available.
//
// The first stage uses the bit-parallel simulator to discard candidates
// whose first-failure cycle disagrees with the observation; survivors
// are trace-matched exactly.
func Diagnose(n *logic.Netlist, vecs VectorSeq, observed ObservedTrace,
	candidates []Fault) ([]Candidate, error) {
	return DiagnoseOpts(n, vecs, observed, candidates, DiagnoseOptions{})
}

// DiagnoseOpts is Diagnose with the full option set.
func DiagnoseOpts(n *logic.Netlist, vecs VectorSeq, observed ObservedTrace,
	candidates []Fault, opts DiagnoseOptions) ([]Candidate, error) {

	good := GoodTrace(n, vecs)
	firstFail := -1
	for cyc := range observed {
		if observed[cyc] != good[cyc] {
			firstFail = cyc
			break
		}
	}
	if firstFail < 0 {
		return nil, nil // machine passed: nothing to diagnose
	}

	// Stage 1: parallel simulation gives each candidate's first
	// detection cycle; a single-fault hypothesis must first fail exactly
	// where the observation first fails.
	res := opts.Presim
	if res == nil {
		if candidates == nil {
			candidates, _ = Collapse(n, AllFaults(n))
		}
		var err error
		res, err = Simulate(n, vecs, SimOptions{Faults: candidates})
		if err != nil {
			return nil, err
		}
	}
	var survivors []Fault
	for i, f := range res.Faults {
		if int(res.DetectedAt[i]) == firstFail {
			survivors = append(survivors, f)
		}
	}
	// Stage 2: bit-parallel trace matching of the survivors (a popular
	// first-failure cycle — e.g. the loop's first OUT — can leave
	// hundreds of them).
	out := traceMatchBatched(n, vecs, good, observed, survivors)
	// Rank best-first (insertion sort: candidate lists are short).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Score() < out[j].Score(); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, nil
}

// traceMatchBatched scores up to 63 candidate faults per word-parallel
// run against the observed trace.
func traceMatchBatched(n *logic.Netlist, vecs VectorSeq, good, observed ObservedTrace,
	cands []Fault) []Candidate {

	w := logic.NewCompiledSim(logic.CompiledFor(n))
	inputs := n.Inputs()
	outputs := n.Outputs()
	var out []Candidate
	for start := 0; start < len(cands); start += 63 {
		batch := cands[start:min(start+63, len(cands))]
		w.Reset()
		for li, f := range batch {
			w.Inject(f.Site, f.SA1, uint(li+1))
		}
		w.ApplyInjectionsToValues()
		scores := make([]Candidate, len(batch))
		for i := range scores {
			scores[i] = Candidate{Fault: batch[i], ExactMatch: true}
		}
		liveMask := uint64(1)<<uint(len(batch)+1) - 2
		for cyc := 0; cyc < vecs.Len(); cyc++ {
			v := vecs.At(cyc)
			for bi, in := range inputs {
				w.SetInput(in, v>>uint(bi)&1 == 1)
			}
			w.Settle()
			var diffGood, diffObs uint64
			for b, o := range outputs {
				word := w.Word(o)
				goodRef := uint64(0)
				if good[cyc]>>uint(b)&1 == 1 {
					goodRef = ^uint64(0)
				}
				obsRef := uint64(0)
				if observed[cyc]>>uint(b)&1 == 1 {
					obsRef = ^uint64(0)
				}
				diffGood |= word ^ goodRef
				diffObs |= word ^ obsRef
			}
			diffGood &= liveMask
			diffObs &= liveMask
			obsFail := observed[cyc] != good[cyc]
			if diffGood != 0 || diffObs != 0 || obsFail {
				for li := range batch {
					bit := uint(li + 1)
					simFail := diffGood>>bit&1 == 1
					if diffObs>>bit&1 == 1 {
						scores[li].ExactMatch = false
					}
					switch {
					case obsFail && simFail:
						scores[li].MatchedFailures++
					case obsFail && !simFail:
						scores[li].MissedFailures++
					case !obsFail && simFail:
						scores[li].Mispredicts++
					}
				}
			}
			w.ClockAfterSettle()
		}
		out = append(out, scores...)
	}
	return out
}
