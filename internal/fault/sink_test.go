package fault

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// recordSink captures the event stream of a run.
type recordSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recordSink) Emit(ev obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func TestSimulateEmitsSegmentAndSummaryEvents(t *testing.T) {
	n := buildAdder(t)
	vecs := randomVectors(300, 9, 7)
	rec := &recordSink{}
	res, err := Simulate(n, vecs, SimOptions{SegmentLen: 64, Sink: rec})
	if err != nil {
		t.Fatal(err)
	}

	var segments, summaries []obs.Event
	for _, ev := range rec.events {
		switch ev.Type {
		case obs.EventSegment:
			segments = append(segments, ev)
		case obs.EventSummary:
			summaries = append(summaries, ev)
		}
	}
	if len(segments) == 0 {
		t.Fatal("no segment events")
	}
	for _, ev := range segments {
		for _, key := range []string{"done", "total", "detected", "remaining", "coverage"} {
			if _, ok := ev.Fields[key]; !ok {
				t.Fatalf("segment event missing %q: %+v", key, ev.Fields)
			}
		}
	}
	if len(summaries) != 1 {
		t.Fatalf("want exactly one summary event, got %d", len(summaries))
	}
	sum := summaries[0]
	if sum.Fields["detected"] != res.Detected() || sum.Fields["faults"] != len(res.Faults) {
		t.Fatalf("summary fields %+v disagree with result (%d/%d)",
			sum.Fields, res.Detected(), len(res.Faults))
	}
	if sum.Fields["interrupted"] != false {
		t.Fatal("uninterrupted run flagged interrupted")
	}
	// The span must close after the summary, with counters attached.
	last := rec.events[len(rec.events)-1]
	if last.Type != obs.EventSpanEnd || last.Name != "faultsim" {
		t.Fatalf("last event %+v, want faultsim span_end", last)
	}
	if v, ok := last.Fields["vectors"].(int64); !ok || v == 0 {
		t.Fatalf("span_end missing vectors counter: %+v", last.Fields)
	}
}

// TestTraceSchemaGolden locks the event-stream shape (types, names and
// field sets) a traced fault-simulation run produces — the contract
// -trace consumers parse. Values vary run to run; the schema must not.
func TestTraceSchemaGolden(t *testing.T) {
	n := buildAdder(t)
	vecs := randomVectors(200, 9, 7)
	rec := &recordSink{}
	if _, err := Simulate(n, vecs, SimOptions{SegmentLen: 128, Sink: rec}); err != nil {
		t.Fatal(err)
	}

	var lines []string
	seen := map[string]bool{}
	for _, ev := range rec.events {
		keys := make([]string, 0, len(ev.Fields))
		for k := range ev.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		line := fmt.Sprintf("%s %s [%s]", ev.Type, ev.Name, strings.Join(keys, ","))
		if !seen[line] { // schema, not cardinality
			seen[line] = true
			lines = append(lines, line)
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "trace_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("trace schema drifted:\ngot:\n%swant:\n%s", got, want)
	}

	// The same stream serialized through the NDJSON sink must be one
	// valid JSON object per line.
	var buf bytes.Buffer
	nd := obs.NewNDJSONSink(&buf)
	for _, ev := range rec.events {
		nd.Emit(ev)
	}
	nd.Flush()
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("NDJSON line %d invalid: %v", i+1, err)
		}
	}
}

func TestSimulateInterrupted(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(4096, 4, 11)
	ctx, cancel := context.WithCancel(context.Background())
	rec := &recordSink{}
	interruptAt := 0
	res, err := Simulate(n, vecs, SimOptions{
		SegmentLen: 32,
		Ctx:        ctx,
		Sink:       rec,
		Progress: func(cycles, detected, remaining int) {
			if cycles >= 64 && interruptAt == 0 {
				interruptAt = cycles
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run not flagged interrupted")
	}
	if res.Cycles >= vecs.Len() || res.Cycles < interruptAt {
		t.Fatalf("partial Cycles = %d (interrupted at %d of %d)", res.Cycles, interruptAt, vecs.Len())
	}
	// The summary must still be emitted, flagged interrupted.
	var sum *obs.Event
	for i := range rec.events {
		if rec.events[i].Type == obs.EventSummary {
			sum = &rec.events[i]
		}
	}
	if sum == nil {
		t.Fatal("no summary event after interruption")
	}
	if sum.Fields["interrupted"] != true || sum.Fields["cycles"] != res.Cycles {
		t.Fatalf("interrupted summary %+v", sum.Fields)
	}
	// A pre-cancelled context must stop before the first segment.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	res2, err := Simulate(n, vecs, SimOptions{Ctx: ctx2})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Interrupted || res2.Cycles != 0 || res2.Detected() != 0 {
		t.Fatalf("pre-cancelled run: %+v", res2)
	}
}
