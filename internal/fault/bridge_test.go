package fault

import (
	"testing"

	"repro/internal/logic"
)

func TestBridgeResolutionFunctions(t *testing.T) {
	// Two parallel buffers from independent inputs, both observed: the
	// bridge resolution is directly visible.
	b := logic.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	bx := b.Buf(x, "bx")
	by := b.Buf(y, "by")
	ox := b.MarkOutput(bx, "ox")
	oy := b.MarkOutput(by, "oy")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(kind BridgeKind, xv, yv, wantX, wantY bool) {
		t.Helper()
		bs := logic.NewBridgeSimulator(n, bx, by, uint8(kind))
		bs.SetInput(x, xv)
		bs.SetInput(y, yv)
		bs.Settle()
		if bs.Value(ox) != wantX || bs.Value(oy) != wantY {
			t.Errorf("%v x=%v y=%v: got %v,%v want %v,%v",
				kind, xv, yv, bs.Value(ox), bs.Value(oy), wantX, wantY)
		}
	}
	check(BridgeAND, true, false, false, false)
	check(BridgeAND, true, true, true, true)
	check(BridgeOR, true, false, true, true)
	check(BridgeOR, false, false, false, false)
	check(BridgeADominates, true, false, true, true)
	check(BridgeADominates, false, true, false, false)
}

func TestSimulateBridgeDetects(t *testing.T) {
	// XOR of two AND gates; bridge the AND outputs (same level).
	b := logic.NewBuilder()
	in := b.InputBus("in", 4)
	g1 := b.And(in[0], in[1])
	g2 := b.And(in[2], in[3])
	b.MarkOutput(b.Xor(g1, g2), "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	br := Bridge{A: g1, B: g2, Kind: BridgeOR}
	// Exhaustive vectors: the OR bridge must be detected (e.g. in=0b0011:
	// g1=0 g2=1 → bridged both 1 → XOR flips 1→0).
	vecs := make(Vectors, 16)
	for i := range vecs {
		vecs[i] = uint64(i)
	}
	at := SimulateBridge(n, vecs, br)
	if at < 0 {
		t.Fatal("OR bridge undetected by exhaustive vectors")
	}
	// An AND bridge between two identical signals is undetectable:
	// bridge a net with a buffered copy of itself.
	b2 := logic.NewBuilder()
	x2 := b2.Input("x")
	c1 := b2.Buf(x2, "c1")
	c2 := b2.Buf(x2, "c2")
	b2.MarkOutput(b2.And(c1, c2), "y")
	n2, err := b2.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if at := SimulateBridge(n2, Vectors{0, 1, 0, 1}, Bridge{A: c1, B: c2, Kind: BridgeAND}); at >= 0 {
		t.Fatalf("equal-signal bridge reported detected at %d", at)
	}
}

func TestRandomBridgesWellFormed(t *testing.T) {
	n := buildSeq(t)
	bridges := RandomBridges(n, 25, 3)
	if len(bridges) == 0 {
		t.Fatal("no bridges sampled")
	}
	// Recompute levels to verify the same-level guarantee.
	level := make(map[logic.NetID]int32)
	for _, id := range n.CombOrder() {
		g := n.Gate(id)
		for _, in := range g.In {
			if level[in]+1 > level[id] {
				level[id] = level[in] + 1
			}
		}
	}
	for _, br := range bridges {
		if br.A == br.B {
			t.Fatalf("self-bridge %v", br)
		}
		if level[br.A] != level[br.B] {
			t.Fatalf("bridge %v spans levels %d and %d", br, level[br.A], level[br.B])
		}
	}
}

func TestBridgeCoverageOnSeqCircuit(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(200, 4, 31)
	bridges := RandomBridges(n, 20, 7)
	det, tot := BridgeCoverage(n, vecs, bridges)
	if tot != len(bridges) {
		t.Fatalf("total %d != %d", tot, len(bridges))
	}
	if det == 0 {
		t.Error("no bridges detected by 200 random vectors (suspicious)")
	}
	t.Logf("bridge coverage: %d/%d", det, tot)
}
