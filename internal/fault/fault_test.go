package fault

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// buildAdder returns a 4-bit combinational ripple adder netlist with
// fanout branches inserted (9 inputs: a[4], b[4], cin).
func buildAdder(t *testing.T) *logic.Netlist {
	t.Helper()
	b := logic.NewBuilder()
	a := b.InputBus("a", 4)
	x := b.InputBus("x", 4)
	cin := b.Input("cin")
	sum := make(logic.Bus, 4)
	carry := cin
	for i := 0; i < 4; i++ {
		axor := b.Xor(a[i], x[i])
		sum[i] = b.Xor(axor, carry)
		carry = b.Or(b.And(a[i], x[i]), b.And(axor, carry))
	}
	b.MarkOutputBus(sum, "sum")
	b.MarkOutput(carry, "cout")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// buildSeq returns a small sequential circuit: an accumulator register
// feeding back through an adder, with the register value as output.
func buildSeq(t *testing.T) *logic.Netlist {
	t.Helper()
	b := logic.NewBuilder()
	in := b.InputBus("in", 4)
	// acc <- acc + in
	feeds := make(logic.Bus, 4)
	for i := range feeds {
		feeds[i] = b.DeferredBuf()
	}
	acc := b.DFFBus(feeds, "acc")
	carry := b.Const(false)
	for i := 0; i < 4; i++ {
		axor := b.Xor(acc[i], in[i])
		s := b.Xor(axor, carry)
		carry = b.Or(b.And(acc[i], in[i]), b.And(axor, carry))
		b.ResolveBuf(feeds[i], s)
	}
	b.MarkOutputBus(acc, "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// serialDetect fault-simulates one fault with the scalar reference
// simulator and returns the first cycle with an output difference, or -1.
func serialDetect(n *logic.Netlist, f Fault, vecs VectorSeq) int {
	good := logic.NewSimulator(n)
	bad := logic.NewSimulator(n)
	bad.InjectFault(f.Site, f.SA1)
	inputs := n.Inputs()
	for cycle := 0; cycle < vecs.Len(); cycle++ {
		vec := vecs.At(cycle)
		for bi, in := range inputs {
			good.SetInput(in, vec>>uint(bi)&1 == 1)
			bad.SetInput(in, vec>>uint(bi)&1 == 1)
		}
		good.Settle()
		bad.Settle()
		for _, out := range n.Outputs() {
			if good.Value(out) != bad.Value(out) {
				return cycle
			}
		}
		good.Step()
		bad.Step()
	}
	return -1
}

func randomVectors(n int, bits int, seed int64) Vectors {
	rng := rand.New(rand.NewSource(seed))
	v := make(Vectors, n)
	mask := uint64(1)<<uint(bits) - 1
	for i := range v {
		v[i] = rng.Uint64() & mask
	}
	return v
}

func TestSimulateMatchesSerialCombinational(t *testing.T) {
	n := buildAdder(t)
	vecs := randomVectors(100, 9, 42)
	faults := AllFaults(n)
	res, err := Simulate(n, vecs, SimOptions{Faults: faults, SegmentLen: 17})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range faults {
		want := serialDetect(n, f, vecs)
		got := int(res.DetectedAt[i])
		if got != want {
			t.Errorf("fault %v (%s): parallel=%d serial=%d", f, n.NameOf(f.Site), got, want)
		}
	}
}

func TestSimulateMatchesSerialSequential(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(60, 4, 7)
	faults := AllFaults(n)
	res, err := Simulate(n, vecs, SimOptions{Faults: faults, SegmentLen: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range faults {
		want := serialDetect(n, f, vecs)
		got := int(res.DetectedAt[i])
		if got != want {
			t.Errorf("fault %v (%s): parallel=%d serial=%d", f, n.NameOf(f.Site), got, want)
		}
	}
}

func TestSegmentLengthInvariance(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(80, 4, 99)
	faults := AllFaults(n)
	var ref *Result
	for _, segLen := range []int{1, 3, 16, 80, 1000} {
		res, err := Simulate(n, vecs, SimOptions{Faults: faults, SegmentLen: segLen})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range faults {
			if res.DetectedAt[i] != ref.DetectedAt[i] {
				t.Fatalf("segLen=%d fault %v: DetectedAt %d != ref %d",
					segLen, faults[i], res.DetectedAt[i], ref.DetectedAt[i])
			}
		}
	}
}

func TestCollapseEquivalences(t *testing.T) {
	b := logic.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	a := b.And(x, y)
	o := b.Not(a)
	b.MarkOutput(o, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	all := AllFaults(n)
	reps, classOf := Collapse(n, all)
	if len(reps) >= len(all) {
		t.Fatalf("collapse did not shrink: %d -> %d", len(all), len(reps))
	}
	// x/sa0 ≡ and/sa0 ≡ not-out/sa1 must share one representative.
	// (x feeds only the AND; the AND feeds only the NOT; the NOT feeds
	// only the output buffer.)
	andNet := a
	xSa0 := classOf[Fault{Site: x, SA1: false}]
	andSa0 := classOf[Fault{Site: andNet, SA1: false}]
	notSa1 := classOf[Fault{Site: o, SA1: true}]
	if xSa0 != andSa0 || andSa0 != notSa1 {
		t.Fatalf("expected x/sa0 ≡ and/sa0 ≡ not/sa1: %v %v %v", xSa0, andSa0, notSa1)
	}
	// Every fault must map to a representative that maps to itself.
	for f, rep := range classOf {
		if classOf[rep] != rep {
			t.Fatalf("rep of %v is %v which is not canonical", f, rep)
		}
	}
}

func TestCollapsedCoverageConsistent(t *testing.T) {
	// Detection status of a representative must equal the serial
	// detection status of every member of its class.
	n := buildAdder(t)
	vecs := randomVectors(200, 9, 5)
	all := AllFaults(n)
	reps, classOf := Collapse(n, all)
	res, err := Simulate(n, vecs, SimOptions{Faults: reps})
	if err != nil {
		t.Fatal(err)
	}
	detected := make(map[Fault]bool)
	for i, f := range res.Faults {
		detected[f] = res.DetectedAt[i] >= 0
	}
	for _, f := range all {
		want := serialDetect(n, f, vecs) >= 0
		if got := detected[classOf[f]]; got != want {
			t.Errorf("fault %v: class rep detection %v, serial %v", f, got, want)
		}
	}
}

func TestFullCoverageOnExhaustiveAdder(t *testing.T) {
	n := buildAdder(t)
	// All 512 input combinations.
	vecs := make(Vectors, 512)
	for i := range vecs {
		vecs[i] = uint64(i)
	}
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		undetected := []string{}
		for i, c := range res.DetectedAt {
			if c < 0 {
				undetected = append(undetected, res.Faults[i].String()+"="+n.NameOf(res.Faults[i].Site))
			}
		}
		t.Fatalf("exhaustive adder coverage %.4f, undetected: %v", res.Coverage(), undetected)
	}
}

func TestResultQueries(t *testing.T) {
	n := buildAdder(t)
	vecs := make(Vectors, 512)
	for i := range vecs {
		vecs[i] = uint64(i)
	}
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Detected()
	if got := res.DetectedBy(res.Cycles); got != total {
		t.Fatalf("DetectedBy(end)=%d != Detected()=%d", got, total)
	}
	if res.DetectedBy(0) > total {
		t.Fatal("DetectedBy(0) exceeds total")
	}
	if res.CoverageAt(res.Cycles) != res.Coverage() {
		t.Fatal("CoverageAt(end) != Coverage")
	}
	fc := res.FirstCycleReaching(total)
	if fc < 0 || res.DetectedBy(fc) < total {
		t.Fatalf("FirstCycleReaching(%d)=%d inconsistent", total, fc)
	}
	if fc > 0 && res.DetectedBy(fc-1) >= total {
		t.Fatalf("FirstCycleReaching not minimal: %d", fc)
	}
	if res.FirstCycleReaching(total+1) != -1 {
		t.Fatal("FirstCycleReaching beyond total should be -1")
	}
	if res.FirstCycleReaching(0) != 0 {
		t.Fatal("FirstCycleReaching(0) should be 0")
	}
}

func TestRegionCoverage(t *testing.T) {
	b := logic.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	var inner logic.NetID
	b.Scoped("blockA", func() {
		inner = b.And(x, y)
	})
	b.MarkOutput(inner, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vecs := Vectors{0, 1, 2, 3}
	res, err := Simulate(n, vecs, SimOptions{Faults: AllFaults(n)})
	if err != nil {
		t.Fatal(err)
	}
	det, tot := res.RegionCoverage(n, "blockA")
	if tot != 2 {
		t.Fatalf("blockA total faults = %d, want 2", tot)
	}
	if det != 2 {
		t.Fatalf("blockA detected = %d, want 2 (exhaustive inputs)", det)
	}
}

func TestRegionFaults(t *testing.T) {
	b := logic.NewBuilder()
	x := b.Input("x")
	b.Scoped("blk", func() {
		b.MarkOutput(b.Not(x), "out")
	})
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fl := RegionFaults(n, "blk")
	// NOT gate + output buffer = 2 nets = 4 faults.
	if len(fl) != 4 {
		t.Fatalf("region faults = %d, want 4", len(fl))
	}
	if RegionFaults(n, "nope") != nil {
		t.Fatal("unknown region should yield nil")
	}
}

func TestTooManyInputsRejected(t *testing.T) {
	b := logic.NewBuilder()
	bus := b.InputBus("in", 65)
	b.MarkOutput(b.Xor(bus...), "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(n, Vectors{0}, SimOptions{}); err == nil {
		t.Fatal("expected error for >64 inputs")
	}
}

func TestFuncSeq(t *testing.T) {
	fs := FuncSeq{N: 10, Fn: func(c int) uint64 { return uint64(c * 3) }}
	if fs.Len() != 10 || fs.At(4) != 12 {
		t.Fatal("FuncSeq misbehaves")
	}
}

func TestDFFOutputFaultHoldsFromStart(t *testing.T) {
	// A sa1 fault on a DFF Q net must be visible at cycle 0 even though
	// the reset state is 0.
	b := logic.NewBuilder()
	din := b.Input("din")
	q := b.DFF(din, "q")
	b.MarkOutput(q, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := Fault{Site: q, SA1: true}
	res, err := Simulate(n, Vectors{0, 0, 0}, SimOptions{Faults: []Fault{f}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 0 {
		t.Fatalf("DFF Q sa1 detected at %d, want 0", res.DetectedAt[0])
	}
}
