package fault

import (
	"testing"

	"repro/internal/logic"
)

func TestLongestPaths(t *testing.T) {
	n := buildAdder(t)
	paths := LongestPaths(n, 5)
	if len(paths) != 5 {
		t.Fatalf("got %d paths", len(paths))
	}
	// Deepest first, each path a connected chain.
	prevLen := 1 << 30
	for _, p := range paths {
		if len(p.Nets) > prevLen {
			t.Fatalf("paths not depth-ordered")
		}
		prevLen = len(p.Nets)
		for i := 1; i < len(p.Nets); i++ {
			g := n.Gate(p.Nets[i])
			connected := false
			for _, in := range g.In {
				if in == p.Nets[i-1] {
					connected = true
				}
			}
			if !connected {
				t.Fatalf("path %v broken at step %d", p, i)
			}
		}
	}
	// The 4-bit ripple adder's critical path spans all four stages:
	// expect a path at least 8 nets long.
	if len(paths[0].Nets) < 8 {
		t.Fatalf("critical path suspiciously short: %d nets", len(paths[0].Nets))
	}
}

func TestRobustTestAndChain(t *testing.T) {
	// y = AND(a, b): the a→y path is robustly tested by a transition on
	// a with b stable at 1, and not tested when b toggles or is 0.
	b := logic.NewBuilder()
	av := b.Input("a")
	bv := b.Input("b")
	y := b.And(av, bv)
	b.MarkOutput(y, "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := Path{Nets: []logic.NetID{av, y}}

	run := func(vs ...uint64) *PathDelayResult {
		res, err := SimulatePathDelay(n, Vectors(vs), []Path{path})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// a: 0→1 with b=1: rising robust test at cycle 1.
	res := run(0b10, 0b11)
	if res.RisingAt[0] != 1 || res.FallingAt[0] != -1 {
		t.Fatalf("rising: %d falling: %d", res.RisingAt[0], res.FallingAt[0])
	}
	// a falls with b=1: falling test.
	res = run(0b11, 0b10)
	if res.FallingAt[0] != 1 {
		t.Fatalf("falling not detected: %d", res.FallingAt[0])
	}
	// b toggles in the same pair: not robust.
	res = run(0b00, 0b11)
	if res.RisingAt[0] != -1 {
		t.Fatal("non-robust pair accepted (side input toggled)")
	}
	// b=0 (controlling): not a test.
	res = run(0b00, 0b01)
	if res.RisingAt[0] != -1 {
		t.Fatal("controlling side value accepted")
	}
}

func TestRobustThroughInverterAndMux(t *testing.T) {
	b := logic.NewBuilder()
	av := b.Input("a")
	sel := b.Input("sel")
	other := b.Input("o")
	inv := b.Not(av)
	m := b.Mux2(sel, inv, other)
	b.MarkOutput(m, "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := Path{Nets: []logic.NetID{av, inv, m}}
	// sel=0 routes the inverter; a rising at the head appears falling at
	// the output — still a single robust rising-launch test.
	res, err := SimulatePathDelay(n, Vectors{0b000, 0b001}, []Path{path})
	if err != nil {
		t.Fatal(err)
	}
	if res.RisingAt[0] != 1 {
		t.Fatalf("mux path not tested: %d", res.RisingAt[0])
	}
	// sel=1 routes the other input: no test.
	res, err = SimulatePathDelay(n, Vectors{0b010, 0b011}, []Path{path})
	if err != nil {
		t.Fatal(err)
	}
	if res.RisingAt[0] != -1 {
		t.Fatal("unselected mux path accepted")
	}
	// sel toggling during the pair: not robust.
	res, err = SimulatePathDelay(n, Vectors{0b000, 0b011}, []Path{path})
	if err != nil {
		t.Fatal(err)
	}
	if res.RisingAt[0] != -1 {
		t.Fatal("toggling select accepted")
	}
}

func TestPathDelayOnSequentialCircuit(t *testing.T) {
	n := buildSeq(t)
	// Short (2-net) paths: every gate-input→output hop. Robust tests of
	// these are common under random vectors; the full carry chains need
	// deliberately synthesized pairs (the point of the paper's ref [5]).
	var paths []Path
	for _, out := range n.CombOrder() {
		g := n.Gate(out)
		if len(g.In) == 0 {
			continue
		}
		paths = append(paths, Path{Nets: []logic.NetID{g.In[0], out}})
		if len(paths) >= 30 {
			break
		}
	}
	vecs := randomVectors(400, 4, 77)
	res, err := SimulatePathDelay(n, vecs, paths)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() == 0 {
		t.Fatal("no short paths robustly tested by 400 random vectors")
	}
	t.Logf("robust path-delay coverage: %.1f%% of %d path-polarity targets",
		100*res.Coverage(), 2*len(paths))

	// Long critical paths: expect robust random testing to be rare (it
	// usually needs synthesized pairs) — just assert the API works.
	long := LongestPaths(n, 5)
	if _, err := SimulatePathDelay(n, vecs, long); err != nil {
		t.Fatal(err)
	}
}
