package fault

import "testing"

func TestNDetectMatchesSerial(t *testing.T) {
	n := buildAdder(t)
	vecs := randomVectors(80, 9, 21)
	faults := AllFaults(n)
	res, err := Simulate(n, vecs, SimOptions{Faults: faults, NDetect: 5, SegmentLen: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == nil {
		t.Fatal("Detections not populated")
	}
	good := GoodTrace(n, vecs)
	for i, f := range faults {
		trace := FaultTrace(n, vecs, f)
		want := 0
		firstFail := -1
		for cyc := range trace {
			if trace[cyc] != good[cyc] {
				want++
				if firstFail < 0 {
					firstFail = cyc
				}
			}
		}
		if want > 5 {
			want = 5 // saturated at NDetect
		}
		if got := int(res.Detections[i]); got != want {
			t.Errorf("fault %v: detections %d, want %d", f, got, want)
		}
		if got := int(res.DetectedAt[i]); got != firstFail {
			t.Errorf("fault %v: first detection %d, want %d", f, got, firstFail)
		}
	}
}

func TestNDetectCoverageMonotone(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(150, 4, 8)
	res, err := Simulate(n, vecs, SimOptions{NDetect: 8})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for k := 1; k <= 8; k++ {
		cov := res.NDetectCoverage(k)
		if cov > prev {
			t.Fatalf("n-detect coverage not monotone at %d: %f > %f", k, cov, prev)
		}
		prev = cov
	}
	// 1-detect coverage must equal plain coverage.
	if got, want := res.NDetectCoverage(1), res.Coverage(); got != want {
		t.Fatalf("1-detect %f != coverage %f", got, want)
	}
}

func TestNDetectDefaultUnchanged(t *testing.T) {
	// Without NDetect the result must match a reference run field by
	// field (regression guard for the drop-logic rework).
	n := buildSeq(t)
	vecs := randomVectors(90, 4, 13)
	faults := AllFaults(n)
	a, err := Simulate(n, vecs, SimOptions{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if a.Detections != nil {
		t.Fatal("Detections should be nil without NDetect")
	}
	for i, f := range faults {
		want := serialDetect(n, f, vecs)
		if int(a.DetectedAt[i]) != want {
			t.Errorf("fault %v: %d want %d", f, a.DetectedAt[i], want)
		}
	}
}
