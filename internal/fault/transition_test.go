package fault

import (
	"testing"

	"repro/internal/logic"
)

// serialTransitionDetect is the scalar reference for the
// one-cycle-late-edge model: the faulty machine runs with its own state;
// each cycle it first settles freely to see whether its driver launches
// a slow-direction edge at the site, then re-settles with the site held
// at the previous driven value when it does, and clocks from that.
func serialTransitionDetect(n *logic.Netlist, f TransitionFault, vecs VectorSeq) int {
	good := logic.NewSimulator(n)
	bad := logic.NewSimulator(n)
	inputs := n.Inputs()
	prev := false
	havePrev := false
	detected := -1
	for cyc := 0; cyc < vecs.Len(); cyc++ {
		v := vecs.At(cyc)
		for b, in := range inputs {
			good.SetInput(in, v>>uint(b)&1 == 1)
			bad.SetInput(in, v>>uint(b)&1 == 1)
		}
		good.Settle()
		bad.ClearFault()
		bad.Settle()
		driven := bad.Value(f.Site)
		if havePrev && driven != prev && driven == f.SlowToRise {
			bad.InjectFault(f.Site, prev)
			bad.Settle()
		}
		for _, o := range n.Outputs() {
			if good.Value(o) != bad.Value(o) {
				if detected < 0 {
					detected = cyc
				}
			}
		}
		if detected >= 0 {
			return detected
		}
		prev = driven
		havePrev = true
		good.ClockAfterSettle()
		bad.ClockAfterSettle()
	}
	return -1
}

func TestTransitionSimMatchesSerial(t *testing.T) {
	for name, build := range map[string]func(*testing.T) *logic.Netlist{
		"adder": buildAdder,
		"seq":   buildSeq,
	} {
		n := build(t)
		bits := len(n.Inputs())
		vecs := randomVectors(90, bits, 101)
		faults := AllTransitionFaults(n)
		res, err := SimulateTransitions(n, vecs, faults)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range faults {
			want := serialTransitionDetect(n, f, vecs)
			if got := int(res.DetectedAt[i]); got != want {
				t.Errorf("%s fault %v: parallel=%d serial=%d", name, f, got, want)
			}
		}
	}
}

func TestTransitionNeedsTransition(t *testing.T) {
	// A constant-input stream never launches: zero coverage.
	n := buildAdder(t)
	vecs := make(Vectors, 50) // all-zero inputs
	res, err := SimulateTransitions(n, vecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() != 0 {
		t.Fatalf("constant stream detected %d transition faults", res.Detected())
	}
}

func TestTransitionCoverageBelowStuckAt(t *testing.T) {
	// TDF detection requires launch + capture, so coverage at equal
	// vectors is at most the stuck-at coverage (each TDF detection
	// implies the corresponding stuck-at detection at that cycle).
	n := buildSeq(t)
	vecs := randomVectors(200, 4, 55)
	tdf, err := SimulateTransitions(n, vecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Simulate(n, vecs, SimOptions{Faults: AllFaults(n)})
	if err != nil {
		t.Fatal(err)
	}
	if tdf.Coverage() > sa.Coverage()+1e-9 {
		t.Fatalf("TDF coverage %.3f exceeds stuck-at %.3f", tdf.Coverage(), sa.Coverage())
	}
	if tdf.Detected() == 0 {
		t.Fatal("no transition faults detected by 200 random vectors")
	}
}
