package fault

import (
	"testing"

	"repro/internal/logic"
)

func TestTransitionMultiGroup(t *testing.T) {
	// Multi-group regression: enough faults for several 63-lane batches,
	// exercising batch packing and cross-batch state isolation.
	b := logic.NewBuilder()
	in := b.InputBus("in", 8)
	state := b.DFFBus(in, "s0")
	x := state
	for k := 0; k < 3; k++ {
		nx := make(logic.Bus, 8)
		carry := b.Const(false)
		for i := 0; i < 8; i++ {
			ax := b.Xor(x[i], in[(i+k)%8])
			nx[i] = b.Xor(ax, carry)
			carry = b.Or(b.And(x[i], in[(i+k)%8]), b.And(ax, carry))
		}
		x = b.DFFBus(nx, "st"+string(rune('a'+k)))
	}
	b.MarkOutputBus(x, "out")
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	vecs := randomVectors(60, 8, 3)
	faults := AllTransitionFaults(n)
	t.Logf("%d faults, %d nets", len(faults), n.NumNets())
	res, err := SimulateTransitions(n, vecs, faults)
	if err != nil {
		t.Fatal(err)
	}
	mism := 0
	for i, f := range faults {
		want := serialTransitionDetect(n, f, vecs)
		if int(res.DetectedAt[i]) != want {
			mism++
			if mism < 6 {
				t.Errorf("fault %v: parallel=%d serial=%d", f, res.DetectedAt[i], want)
			}
		}
	}
	t.Logf("mismatches: %d / %d; parallel detected %d", mism, len(faults), res.Detected())
}
