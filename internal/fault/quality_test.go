package fault

import (
	"strings"
	"testing"
)

func TestQualityReport(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(200, 4, 91)
	rep, err := Quality(n, vecs, QualityOptions{
		NDetect:      3,
		BridgeSample: 10,
		PathPairs:    12,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StuckAt.Coverage() == 0 || rep.Transition.Coverage() == 0 {
		t.Fatal("empty coverages")
	}
	if rep.NDetectCov > rep.StuckAt.Coverage() {
		t.Fatal("3-detect coverage exceeds 1-detect")
	}
	if rep.BridgeTotal != 10 {
		t.Fatalf("bridge total %d", rep.BridgeTotal)
	}
	if rep.PathDelay == nil || len(rep.PathDelay.Paths) != 12 {
		t.Fatal("path pass missing")
	}
	s := rep.String()
	for _, want := range []string{"stuck-at", "3-detect", "transition", "bridging", "path delay"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestQualityMinimal(t *testing.T) {
	n := buildAdder(t)
	vecs := randomVectors(64, 9, 4)
	rep, err := Quality(n, vecs, QualityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if strings.Contains(s, "bridging") || strings.Contains(s, "path delay") || strings.Contains(s, "-detect") {
		t.Errorf("disabled passes leaked into report:\n%s", s)
	}
}
