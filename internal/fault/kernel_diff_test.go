package fault

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// randCircuit builds a random sequential netlist: nIn primary inputs,
// nDFF flip-flops (D pins resolved to random nets at the end, so state
// feedback crosses the whole circuit), nGate random combinational gates
// over random fan-in, and nOut primary outputs over random nets. The
// returned netlist exercises every compiled-kernel code path: variadic
// chains, MUXes, DFF-Q fault sites, PI fault sites, and reconvergence.
func randCircuit(t *testing.T, rng *rand.Rand, fb bool) *logic.Netlist {
	t.Helper()
	b := logic.NewBuilder()
	nIn := 2 + rng.Intn(5)
	nDFF := 1 + rng.Intn(4)
	nGate := 5 + rng.Intn(40)
	nOut := 1 + rng.Intn(3)

	var nets []logic.NetID
	for i := 0; i < nIn; i++ {
		nets = append(nets, b.Input(string(rune('a'+i))))
	}
	type pendingDFF struct{ d, q logic.NetID }
	var dffs []pendingDFF
	for i := 0; i < nDFF; i++ {
		d := b.DeferredBuf()
		q := b.DFF(d, "")
		dffs = append(dffs, pendingDFF{d, q})
		nets = append(nets, q)
	}
	pick := func() logic.NetID { return nets[rng.Intn(len(nets))] }
	for i := 0; i < nGate; i++ {
		var id logic.NetID
		switch rng.Intn(9) {
		case 0:
			id = b.Not(pick())
		case 1:
			id = b.Mux2(pick(), pick(), pick())
		case 2:
			id = b.Xor(pick(), pick())
		case 3:
			id = b.Xnor(pick(), pick())
		default:
			in := make([]logic.NetID, 2+rng.Intn(3))
			for k := range in {
				in[k] = pick()
			}
			switch rng.Intn(4) {
			case 0:
				id = b.And(in...)
			case 1:
				id = b.Or(in...)
			case 2:
				id = b.Nand(in...)
			default:
				id = b.Nor(in...)
			}
		}
		nets = append(nets, id)
	}
	for _, p := range dffs {
		b.ResolveBuf(p.d, pick())
	}
	for i := 0; i < nOut; i++ {
		b.MarkOutput(pick(), string(rune('x'+i)))
	}
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: fb})
	if err != nil {
		t.Fatalf("random netlist build: %v", err)
	}
	return n
}

// TestLaneRetirementMultiWord pins the retirement path with stripes
// wider than one word: a circuit with well over 63 collapsed faults at
// NDetect=2 retires lanes in every stripe word mid-segment, and the
// results must stay bit-identical to the reference kernel. The fuzz
// test can wander into this; this test guarantees it runs.
func TestLaneRetirementMultiWord(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := logic.NewBuilder()
	var nets []logic.NetID
	for i := 0; i < 8; i++ {
		nets = append(nets, b.Input(string(rune('a'+i))))
	}
	for i := 0; i < 120; i++ {
		x := nets[rng.Intn(len(nets))]
		y := nets[rng.Intn(len(nets))]
		var id logic.NetID
		switch i % 4 {
		case 0:
			id = b.And(x, y)
		case 1:
			id = b.Or(x, y)
		case 2:
			id = b.Xor(x, y)
		default:
			id = b.DFF(x, "")
		}
		nets = append(nets, id)
	}
	for i := 0; i < 4; i++ {
		b.MarkOutput(nets[len(nets)-1-i], string(rune('w'+i)))
	}
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := Collapse(n, AllFaults(n))
	if len(faults) <= 63*2 {
		t.Fatalf("fixture too small to span stripe words: %d faults", len(faults))
	}
	vecs := make(Vectors, 96)
	for i := range vecs {
		vecs[i] = rng.Uint64()
	}
	opts := SimOptions{Faults: faults, NDetect: 2, SegmentLen: 48}
	refOpts, cmpOpts := opts, opts
	refOpts.Kernel = KernelReference
	cmpOpts.Kernel = KernelCompiled
	cmpOpts.LaneWords = 4
	ref, err := Simulate(n, vecs, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Simulate(n, vecs, cmpOpts)
	if err != nil {
		t.Fatal(err)
	}
	retired := 0
	for i := range faults {
		if ref.DetectedAt[i] != cmp.DetectedAt[i] || ref.Detections[i] != cmp.Detections[i] {
			t.Fatalf("fault %d site=%d sa1=%v: ref (at=%d n=%d) vs w=4 (at=%d n=%d)",
				i, faults[i].Site, faults[i].SA1,
				ref.DetectedAt[i], ref.Detections[i], cmp.DetectedAt[i], cmp.Detections[i])
		}
		// A lane retires once it reaches the n-detect target before the
		// sequence ends; crossing 63 of them guarantees retirements in
		// stripe words beyond the first.
		if ref.Detections[i] >= 2 && ref.DetectedAt[i] < int32(len(vecs))/2 {
			retired++
		}
	}
	if retired <= 63 {
		t.Fatalf("only %d early-retired lanes — fixture no longer exercises multi-word retirement", retired)
	}
}

// TestKernelDifferentialFuzz drives random netlists, fault lists and
// vector sequences through both kernels and requires bit-identical
// DetectedAt and Detections. Segment lengths are randomized so batches
// cross drop/repack boundaries mid-divergence, and NDetect > 1 runs
// exercise lane retirement.
func TestKernelDifferentialFuzz(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 1))
		n := randCircuit(t, rng, seed%2 == 1)
		faults, _ := Collapse(n, AllFaults(n))
		nCycles := 16 + rng.Intn(200)
		vecs := make(Vectors, nCycles)
		for i := range vecs {
			vecs[i] = rng.Uint64()
		}
		opts := SimOptions{
			Faults:     faults,
			SegmentLen: 4 + rng.Intn(64),
			NDetect:    1 + rng.Intn(3),
			// Random stripe width, zero sometimes: the auto-tuned width
			// must be as bit-exact as every explicit one. Widths beyond
			// the fault count leave whole lane words empty, which is its
			// own edge case worth the fuzz coverage.
			LaneWords: rng.Intn(7),
		}
		if seed%5 == 0 {
			// Default segmentation: the compiled kernel's adaptive
			// schedule against the reference kernel's fixed frames.
			opts.SegmentLen = 0
		}
		refOpts, cmpOpts := opts, opts
		refOpts.Kernel = KernelReference
		cmpOpts.Kernel = KernelCompiled
		ref, err := Simulate(n, vecs, refOpts)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		cmp, err := Simulate(n, vecs, cmpOpts)
		if err != nil {
			t.Fatalf("seed %d: compiled: %v", seed, err)
		}
		for i := range faults {
			if ref.DetectedAt[i] != cmp.DetectedAt[i] {
				t.Fatalf("seed %d (nets=%d dffs=%d seg=%d ndet=%d lw=%d): fault %d site=%d sa1=%v: DetectedAt ref=%d compiled=%d",
					seed, n.NumNets(), len(n.DFFs()), opts.SegmentLen, opts.NDetect, opts.LaneWords,
					i, faults[i].Site, faults[i].SA1, ref.DetectedAt[i], cmp.DetectedAt[i])
			}
			if ref.Detections != nil && ref.Detections[i] != cmp.Detections[i] {
				t.Fatalf("seed %d (nets=%d dffs=%d seg=%d ndet=%d lw=%d): fault %d site=%d sa1=%v: Detections ref=%d compiled=%d",
					seed, n.NumNets(), len(n.DFFs()), opts.SegmentLen, opts.NDetect, opts.LaneWords,
					i, faults[i].Site, faults[i].SA1, ref.Detections[i], cmp.Detections[i])
			}
		}
	}
}
