package fault

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// randCircuit builds a random sequential netlist: nIn primary inputs,
// nDFF flip-flops (D pins resolved to random nets at the end, so state
// feedback crosses the whole circuit), nGate random combinational gates
// over random fan-in, and nOut primary outputs over random nets. The
// returned netlist exercises every compiled-kernel code path: variadic
// chains, MUXes, DFF-Q fault sites, PI fault sites, and reconvergence.
func randCircuit(t *testing.T, rng *rand.Rand, fb bool) *logic.Netlist {
	t.Helper()
	b := logic.NewBuilder()
	nIn := 2 + rng.Intn(5)
	nDFF := 1 + rng.Intn(4)
	nGate := 5 + rng.Intn(40)
	nOut := 1 + rng.Intn(3)

	var nets []logic.NetID
	for i := 0; i < nIn; i++ {
		nets = append(nets, b.Input(string(rune('a'+i))))
	}
	type pendingDFF struct{ d, q logic.NetID }
	var dffs []pendingDFF
	for i := 0; i < nDFF; i++ {
		d := b.DeferredBuf()
		q := b.DFF(d, "")
		dffs = append(dffs, pendingDFF{d, q})
		nets = append(nets, q)
	}
	pick := func() logic.NetID { return nets[rng.Intn(len(nets))] }
	for i := 0; i < nGate; i++ {
		var id logic.NetID
		switch rng.Intn(9) {
		case 0:
			id = b.Not(pick())
		case 1:
			id = b.Mux2(pick(), pick(), pick())
		case 2:
			id = b.Xor(pick(), pick())
		case 3:
			id = b.Xnor(pick(), pick())
		default:
			in := make([]logic.NetID, 2+rng.Intn(3))
			for k := range in {
				in[k] = pick()
			}
			switch rng.Intn(4) {
			case 0:
				id = b.And(in...)
			case 1:
				id = b.Or(in...)
			case 2:
				id = b.Nand(in...)
			default:
				id = b.Nor(in...)
			}
		}
		nets = append(nets, id)
	}
	for _, p := range dffs {
		b.ResolveBuf(p.d, pick())
	}
	for i := 0; i < nOut; i++ {
		b.MarkOutput(pick(), string(rune('x'+i)))
	}
	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: fb})
	if err != nil {
		t.Fatalf("random netlist build: %v", err)
	}
	return n
}

// TestKernelDifferentialFuzz drives random netlists, fault lists and
// vector sequences through both kernels and requires bit-identical
// DetectedAt and Detections. Segment lengths are randomized so batches
// cross drop/repack boundaries mid-divergence, and NDetect > 1 runs
// exercise lane retirement.
func TestKernelDifferentialFuzz(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 1))
		n := randCircuit(t, rng, seed%2 == 1)
		faults, _ := Collapse(n, AllFaults(n))
		nCycles := 16 + rng.Intn(200)
		vecs := make(Vectors, nCycles)
		for i := range vecs {
			vecs[i] = rng.Uint64()
		}
		opts := SimOptions{
			Faults:     faults,
			SegmentLen: 4 + rng.Intn(64),
			NDetect:    1 + rng.Intn(3),
		}
		if seed%5 == 0 {
			// Default segmentation: the compiled kernel's adaptive
			// schedule against the reference kernel's fixed frames.
			opts.SegmentLen = 0
		}
		refOpts, cmpOpts := opts, opts
		refOpts.Kernel = KernelReference
		cmpOpts.Kernel = KernelCompiled
		ref, err := Simulate(n, vecs, refOpts)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		cmp, err := Simulate(n, vecs, cmpOpts)
		if err != nil {
			t.Fatalf("seed %d: compiled: %v", seed, err)
		}
		for i := range faults {
			if ref.DetectedAt[i] != cmp.DetectedAt[i] {
				t.Fatalf("seed %d (nets=%d dffs=%d seg=%d ndet=%d): fault %d site=%d sa1=%v: DetectedAt ref=%d compiled=%d",
					seed, n.NumNets(), len(n.DFFs()), opts.SegmentLen, opts.NDetect,
					i, faults[i].Site, faults[i].SA1, ref.DetectedAt[i], cmp.DetectedAt[i])
			}
			if ref.Detections != nil && ref.Detections[i] != cmp.Detections[i] {
				t.Fatalf("seed %d (nets=%d dffs=%d seg=%d ndet=%d): fault %d site=%d sa1=%v: Detections ref=%d compiled=%d",
					seed, n.NumNets(), len(n.DFFs()), opts.SegmentLen, opts.NDetect,
					i, faults[i].Site, faults[i].SA1, ref.Detections[i], cmp.Detections[i])
			}
		}
	}
}
