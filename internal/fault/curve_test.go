package fault

import (
	"math"
	"testing"
)

func TestCurveSampling(t *testing.T) {
	n := buildAdder(t)
	vecs := make(Vectors, 512)
	for i := range vecs {
		vecs[i] = uint64(i)
	}
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Curve(nil)
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	prev := -1.0
	for _, p := range pts {
		if p.Coverage < prev {
			t.Fatalf("coverage not monotone at %d", p.Cycle)
		}
		prev = p.Coverage
	}
	if last := pts[len(pts)-1]; last.Cycle != 512 || last.Coverage != res.Coverage() {
		t.Fatalf("final point %+v", last)
	}
	custom := res.Curve([]int{10, 100})
	if len(custom) != 2 || custom[0].Cycle != 10 {
		t.Fatalf("custom sweep %+v", custom)
	}
}

func TestCoverageAtEdgeCases(t *testing.T) {
	// Empty result: every helper must degrade to zero, not divide by
	// zero or panic.
	empty := &Result{}
	if empty.Coverage() != 0 || empty.CoverageAt(100) != 0 || empty.NDetectCoverage(2) != 0 {
		t.Fatal("empty result coverage must be 0")
	}
	if empty.DetectedBy(10) != 0 || empty.Detected() != 0 {
		t.Fatal("empty result detections must be 0")
	}

	n := buildAdder(t)
	vecs := randomVectors(256, 9, 3)
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Negative cycle: nothing is detected strictly before cycle 0
	// unless a fault fires on the very first vector at cycle 0 — so
	// cycle -1 must always be 0.
	if res.CoverageAt(-1) != 0 {
		t.Errorf("CoverageAt(-1) = %f, want 0", res.CoverageAt(-1))
	}
	// Out-of-range high cycle: clamps to the full-run coverage.
	if got := res.CoverageAt(res.Cycles * 10); got != res.Coverage() {
		t.Errorf("CoverageAt(beyond end) = %f, want %f", got, res.Coverage())
	}
	// CoverageAt is monotone in the cycle argument.
	prev := -1.0
	for _, c := range []int{0, 1, 2, 4, 64, 255, 256, 1 << 20} {
		cov := res.CoverageAt(c)
		if cov < prev {
			t.Fatalf("CoverageAt not monotone at %d", c)
		}
		prev = cov
	}
}

func TestFirstCycleReachingEdgeCases(t *testing.T) {
	empty := &Result{}
	if got := empty.FirstCycleReaching(0); got != 0 {
		t.Errorf("k=0 on empty result: %d, want 0 (trivially reached)", got)
	}
	if got := empty.FirstCycleReaching(1); got != -1 {
		t.Errorf("k=1 on empty result: %d, want -1", got)
	}

	n := buildAdder(t)
	vecs := randomVectors(256, 9, 3)
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := res.Detected()
	if det == 0 {
		t.Fatal("fixture detects nothing")
	}
	if got := res.FirstCycleReaching(det + 1); got != -1 {
		t.Errorf("unreachable k: %d, want -1", got)
	}
	// Consistency with DetectedBy: at the returned cycle, at least k
	// faults are detected; one cycle earlier, fewer than k.
	for _, k := range []int{1, det / 2, det} {
		if k < 1 {
			continue
		}
		c := res.FirstCycleReaching(k)
		if c < 0 {
			t.Fatalf("k=%d unexpectedly unreachable", k)
		}
		if res.DetectedBy(c) < k {
			t.Errorf("k=%d: only %d detected by cycle %d", k, res.DetectedBy(c), c)
		}
		if c > 0 && res.DetectedBy(c-1) >= k {
			t.Errorf("k=%d: cycle %d is not the first (already %d at %d)",
				k, c, res.DetectedBy(c-1), c-1)
		}
	}
	if res.FirstCycleReaching(-3) != 0 {
		t.Error("negative k must be trivially reached at cycle 0")
	}
}

func TestRegionCoverageEdgeCases(t *testing.T) {
	n := buildAdder(t)
	// Empty result against a real netlist: no faults, so both counts
	// are zero for any region.
	empty := &Result{}
	if det, tot := empty.RegionCoverage(n, "nosuchregion"); det != 0 || tot != 0 {
		t.Fatalf("empty result region counts %d/%d", det, tot)
	}
	vecs := randomVectors(256, 9, 3)
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown region: zero faults fall inside it.
	if det, tot := res.RegionCoverage(n, "nosuchregion"); det != 0 || tot != 0 {
		t.Fatalf("unknown region counts %d/%d", det, tot)
	}
}

func TestFitSaturationOnRealRun(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(600, 4, 5)
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.FitSaturation()
	if m.Tau <= 0 || m.A <= 0 {
		t.Fatalf("degenerate model %+v", m)
	}
	// The model must roughly track the measured curve on held-out
	// points.
	for _, v := range []int{48, 96, 300} {
		got := m.Coverage(float64(v))
		want := res.CoverageAt(v)
		if math.Abs(got-want) > 0.2 {
			t.Errorf("model at %d: %.3f vs measured %.3f", v, got, want)
		}
	}
	// LengthFor inverts Coverage (probe where the model is positive:
	// below ~Tau·ln(A/Cmax) the clamped model is not invertible).
	probe := 3 * m.Tau
	if target := m.Coverage(probe); target > 0 {
		if l := m.LengthFor(target); math.Abs(l-probe) > 1e-6*probe+1 {
			t.Errorf("LengthFor(Coverage(%f)) = %f", probe, l)
		}
	}
	if m.LengthFor(m.Cmax+0.01) != -1 {
		t.Error("unreachable target should return -1")
	}
}
