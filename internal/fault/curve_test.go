package fault

import (
	"math"
	"testing"
)

func TestCurveSampling(t *testing.T) {
	n := buildAdder(t)
	vecs := make(Vectors, 512)
	for i := range vecs {
		vecs[i] = uint64(i)
	}
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Curve(nil)
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	prev := -1.0
	for _, p := range pts {
		if p.Coverage < prev {
			t.Fatalf("coverage not monotone at %d", p.Cycle)
		}
		prev = p.Coverage
	}
	if last := pts[len(pts)-1]; last.Cycle != 512 || last.Coverage != res.Coverage() {
		t.Fatalf("final point %+v", last)
	}
	custom := res.Curve([]int{10, 100})
	if len(custom) != 2 || custom[0].Cycle != 10 {
		t.Fatalf("custom sweep %+v", custom)
	}
}

func TestFitSaturationOnRealRun(t *testing.T) {
	n := buildSeq(t)
	vecs := randomVectors(600, 4, 5)
	res, err := Simulate(n, vecs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.FitSaturation()
	if m.Tau <= 0 || m.A <= 0 {
		t.Fatalf("degenerate model %+v", m)
	}
	// The model must roughly track the measured curve on held-out
	// points.
	for _, v := range []int{48, 96, 300} {
		got := m.Coverage(float64(v))
		want := res.CoverageAt(v)
		if math.Abs(got-want) > 0.2 {
			t.Errorf("model at %d: %.3f vs measured %.3f", v, got, want)
		}
	}
	// LengthFor inverts Coverage (probe where the model is positive:
	// below ~Tau·ln(A/Cmax) the clamped model is not invertible).
	probe := 3 * m.Tau
	if target := m.Coverage(probe); target > 0 {
		if l := m.LengthFor(target); math.Abs(l-probe) > 1e-6*probe+1 {
			t.Errorf("LengthFor(Coverage(%f)) = %f", probe, l)
		}
	}
	if m.LengthFor(m.Cmax+0.01) != -1 {
		t.Error("unreachable target should return -1")
	}
}
