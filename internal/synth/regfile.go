package synth

import (
	"fmt"

	"repro/internal/logic"
)

// RegFile is the gate-level dual-read, single-write register file
// emitted by RegisterFile. Read data is combinational; writes occur on
// the clock edge when WriteEn=1.
type RegFile struct {
	// Regs[i] is register i's Q bus.
	Regs []logic.Bus
}

// RegisterFileConfig sizes a register file.
type RegisterFileConfig struct {
	NumRegs int // must be a power of two
	Width   int
}

// RegisterFile emits a register file with one write port (addr, data,
// enable) and exposes combinational read through ReadPort. Each register
// holds unless the write decoder selects it while writeEn is high.
func RegisterFile(b *logic.Builder, cfg RegisterFileConfig, writeAddr logic.Bus, writeData logic.Bus, writeEn logic.NetID) *RegFile {
	if 1<<uint(len(writeAddr)) != cfg.NumRegs {
		panic("synth: RegisterFile write address width mismatch")
	}
	if len(writeData) != cfg.Width {
		panic("synth: RegisterFile write data width mismatch")
	}
	sel := Decoder(b, writeAddr)
	rf := &RegFile{Regs: make([]logic.Bus, cfg.NumRegs)}
	for i := 0; i < cfg.NumRegs; i++ {
		en := b.And(writeEn, sel[i])
		rf.Regs[i] = Register(b, writeData, en, fmt.Sprintf("r%d", i))
	}
	return rf
}

// ReadPort emits a combinational read port returning Regs[addr].
func (rf *RegFile) ReadPort(b *logic.Builder, addr logic.Bus) logic.Bus {
	return MuxN(b, addr, rf.Regs)
}
