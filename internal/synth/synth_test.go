package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// signExt interprets the low w bits of v as a w-bit two's complement
// value and returns it as int64.
func signExt(v uint64, w int) int64 {
	v &= (1 << uint(w)) - 1
	if v>>(uint(w)-1)&1 == 1 {
		return int64(v) - (1 << uint(w))
	}
	return int64(v)
}

func TestAdderRandom(t *testing.T) {
	for _, width := range []int{1, 4, 8, 18} {
		b := logic.NewBuilder()
		a := b.InputBus("a", width)
		x := b.InputBus("x", width)
		cin := b.Input("cin")
		sum, cout := Adder(b, a, x, cin)
		b.MarkOutputBus(sum, "sum")
		b.MarkOutput(cout, "cout")
		n, err := b.Build(logic.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s := logic.NewSimulator(n)
		rng := rand.New(rand.NewSource(int64(width)))
		mask := uint64(1)<<uint(width) - 1
		for i := 0; i < 500; i++ {
			av, xv := rng.Uint64()&mask, rng.Uint64()&mask
			c := uint64(rng.Intn(2))
			s.SetInputBus(a, av)
			s.SetInputBus(x, xv)
			s.SetInput(cin, c == 1)
			s.Settle()
			total := av + xv + c
			if got := s.BusValue(sum); got != total&mask {
				t.Fatalf("w=%d %d+%d+%d: sum %d want %d", width, av, xv, c, got, total&mask)
			}
			if got := s.Value(cout); got != (total>>uint(width)&1 == 1) {
				t.Fatalf("w=%d %d+%d+%d: cout %v", width, av, xv, c, got)
			}
		}
	}
}

func TestAddSub(t *testing.T) {
	const width = 18
	b := logic.NewBuilder()
	a := b.InputBus("a", width)
	x := b.InputBus("x", width)
	sub := b.Input("sub")
	sum, _ := AddSub(b, a, x, sub)
	b.MarkOutputBus(sum, "sum")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	mask := uint64(1)<<width - 1
	f := func(av, xv uint32, doSub bool) bool {
		aw, xw := uint64(av)&mask, uint64(xv)&mask
		s.SetInputBus(a, aw)
		s.SetInputBus(x, xw)
		s.SetInput(sub, doSub)
		s.Settle()
		var want uint64
		if doSub {
			want = (aw - xw) & mask
		} else {
			want = (aw + xw) & mask
		}
		return s.BusValue(sum) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNegate(t *testing.T) {
	const width = 8
	b := logic.NewBuilder()
	a := b.InputBus("a", width)
	out := Negate(b, a)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	for v := 0; v < 256; v++ {
		s.SetInputBus(a, uint64(v))
		s.Settle()
		want := uint64(-v) & 0xFF
		if got := s.BusValue(out); got != want {
			t.Fatalf("-%d: got %d want %d", v, got, want)
		}
	}
}

func TestMulSignedExhaustive8x8(t *testing.T) {
	b := logic.NewBuilder()
	a := b.InputBus("a", 8)
	x := b.InputBus("x", 8)
	p := MulSigned(b, a, x, 16)
	b.MarkOutputBus(p, "p")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	for av := 0; av < 256; av++ {
		for xv := 0; xv < 256; xv++ {
			s.SetInputBus(a, uint64(av))
			s.SetInputBus(x, uint64(xv))
			s.Settle()
			got := signExt(s.BusValue(p), 16)
			want := signExt(uint64(av), 8) * signExt(uint64(xv), 8)
			if got != want {
				t.Fatalf("%d*%d: got %d want %d", signExt(uint64(av), 8), signExt(uint64(xv), 8), got, want)
			}
		}
	}
}

// refShift mirrors BarrelShifter semantics in plain arithmetic.
func refShift(v int64, width int, mode ShifterMode, amount int64) int64 {
	mask := int64(1)<<uint(width) - 1
	trunc := func(x int64) int64 { return signExtI(x&mask, width) }
	switch mode {
	case ShifterPass:
		return trunc(v)
	case ShifterVariable:
		s := signExtI(amount, 4)
		if s >= 0 {
			return trunc(v << uint(s))
		}
		return trunc(v >> uint(-s))
	case ShifterLeft1:
		return trunc(v << 1)
	case ShifterRight1:
		return trunc(v >> 1)
	}
	panic("bad mode")
}

func signExtI(v int64, w int) int64 {
	v &= int64(1)<<uint(w) - 1
	if v>>(uint(w)-1)&1 == 1 {
		return v - int64(1)<<uint(w)
	}
	return v
}

func TestBarrelShifter(t *testing.T) {
	const width = 18
	b := logic.NewBuilder()
	data := b.InputBus("d", width)
	amount := b.InputBus("amt", 4)
	mode := b.InputBus("mode", 2)
	out := BarrelShifter(b, data, amount, mode)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	rng := rand.New(rand.NewSource(7))
	mask := uint64(1)<<width - 1
	for i := 0; i < 4000; i++ {
		dv := rng.Uint64() & mask
		amt := rng.Intn(16)
		md := ShifterMode(rng.Intn(4))
		s.SetInputBus(data, dv)
		s.SetInputBus(amount, uint64(amt))
		s.SetInputBus(mode, uint64(md))
		s.Settle()
		got := signExt(s.BusValue(out), width)
		want := refShift(signExt(dv, width), width, md, int64(amt))
		if got != want {
			t.Fatalf("shift d=%d amt=%d mode=%d: got %d want %d", signExt(dv, width), amt, md, got, want)
		}
	}
}

func TestBarrelShifterVariableSemantics(t *testing.T) {
	// Check the signed-amount contract directly: for amount in [-8,7],
	// positive shifts left, negative shifts arithmetically right.
	const width = 18
	b := logic.NewBuilder()
	data := b.InputBus("d", width)
	amount := b.InputBus("amt", 4)
	mode := b.InputBus("mode", 2)
	out := BarrelShifter(b, data, amount, mode)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	mask := uint64(1)<<width - 1
	for _, v := range []int64{0, 1, -1, 1000, -1000, 70000, -70000} {
		for amt := -8; amt <= 7; amt++ {
			s.SetInputBus(data, uint64(v)&mask)
			s.SetInputBus(amount, uint64(amt)&15)
			s.SetInputBus(mode, uint64(ShifterVariable))
			s.Settle()
			got := signExt(s.BusValue(out), width)
			var want int64
			if amt >= 0 {
				want = signExtI((v<<uint(amt))&int64(mask), width)
			} else {
				want = signExtI(v, width) >> uint(-amt)
			}
			if got != want {
				t.Fatalf("v=%d amt=%d: got %d want %d", v, amt, got, want)
			}
		}
	}
}

func TestTruncate(t *testing.T) {
	b := logic.NewBuilder()
	data := b.InputBus("d", 18)
	en := b.Input("en")
	out := Truncate(b, data, 8, en)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		dv := rng.Uint64() & (1<<18 - 1)
		for _, e := range []bool{false, true} {
			s.SetInputBus(data, dv)
			s.SetInput(en, e)
			s.Settle()
			want := dv
			if e {
				want &^= 0xFF
			}
			if got := s.BusValue(out); got != want {
				t.Fatalf("trunc d=%x en=%v: got %x want %x", dv, e, got, want)
			}
		}
	}
}

func TestLimiter(t *testing.T) {
	b := logic.NewBuilder()
	data := b.InputBus("d", 18)
	out := Limiter(b, data, 4, 8)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	check := func(v int64) {
		s.SetInputBus(data, uint64(v)&(1<<18-1))
		s.Settle()
		got := signExt(s.BusValue(out), 8)
		// Window is bits [11:4]: value/16 clamped to [-128, 127].
		want := v >> 4
		if want > 127 {
			want = 127
		}
		if want < -128 {
			want = -128
		}
		if got != want {
			t.Fatalf("limit %d: got %d want %d", v, got, want)
		}
	}
	for _, v := range []int64{0, 1, -1, 15, 16, -16, 2032, 2047, 2048, -2048, -2049, 100000, -100000, 131071, -131072} {
		check(v)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		check(signExt(rng.Uint64()&(1<<18-1), 18))
	}
}

func TestDecoder(t *testing.T) {
	b := logic.NewBuilder()
	sel := b.InputBus("sel", 4)
	outs := Decoder(b, sel)
	for i, o := range outs {
		b.MarkOutput(o, "y"+string(rune('A'+i)))
	}
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	for v := 0; v < 16; v++ {
		s.SetInputBus(sel, uint64(v))
		s.Settle()
		for i, o := range outs {
			if s.Value(o) != (i == v) {
				t.Fatalf("decoder sel=%d out%d=%v", v, i, s.Value(o))
			}
		}
	}
}

func TestMuxN(t *testing.T) {
	b := logic.NewBuilder()
	sel := b.InputBus("sel", 2)
	ins := make([]logic.Bus, 4)
	for i := range ins {
		ins[i] = b.InputBus("in"+string(rune('0'+i)), 4)
	}
	out := MuxN(b, sel, ins)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	vals := []uint64{3, 9, 12, 6}
	for i, v := range vals {
		s.SetInputBus(ins[i], v)
	}
	for sv := 0; sv < 4; sv++ {
		s.SetInputBus(sel, uint64(sv))
		s.Settle()
		if got := s.BusValue(out); got != vals[sv] {
			t.Fatalf("mux sel=%d got %d want %d", sv, got, vals[sv])
		}
	}
}

func TestRegisterHoldAndLoad(t *testing.T) {
	b := logic.NewBuilder()
	d := b.InputBus("d", 8)
	en := b.Input("en")
	q := Register(b, d, en, "q")
	b.MarkOutputBus(q, "qo")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	// Load 0xA5.
	s.SetInputBus(d, 0xA5)
	s.SetInput(en, true)
	s.Step()
	if got := s.BusValue(q); got != 0xA5 {
		t.Fatalf("after load: %x", got)
	}
	// Hold while input changes.
	s.SetInputBus(d, 0x3C)
	s.SetInput(en, false)
	s.Step()
	if got := s.BusValue(q); got != 0xA5 {
		t.Fatalf("hold failed: %x", got)
	}
	// Load the new value.
	s.SetInput(en, true)
	s.Step()
	if got := s.BusValue(q); got != 0x3C {
		t.Fatalf("reload failed: %x", got)
	}
}

func TestRegisterLoopAccumulator(t *testing.T) {
	// acc <- acc + in each cycle: classic feedback structure.
	b := logic.NewBuilder()
	in := b.InputBus("in", 8)
	acc := RegisterLoop(b, func(q logic.Bus) logic.Bus {
		sum, _ := Adder(b, q, in, b.Const(false))
		return sum
	}, 8, "acc")
	b.MarkOutputBus(acc, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	total := uint64(0)
	for _, v := range []uint64{1, 2, 3, 100, 255, 7} {
		s.SetInputBus(in, v)
		s.Step()
		total = (total + v) & 0xFF
		if got := s.BusValue(acc); got != total {
			t.Fatalf("acc after +%d: got %d want %d", v, got, total)
		}
	}
}

func TestRegisterFile(t *testing.T) {
	b := logic.NewBuilder()
	wa := b.InputBus("wa", 4)
	wd := b.InputBus("wd", 8)
	we := b.Input("we")
	ra := b.InputBus("ra", 4)
	rb := b.InputBus("rb", 4)
	rf := RegisterFile(b, RegisterFileConfig{NumRegs: 16, Width: 8}, wa, wd, we)
	pa := rf.ReadPort(b, ra)
	pb := rf.ReadPort(b, rb)
	b.MarkOutputBus(pa, "pa")
	b.MarkOutputBus(pb, "pb")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	ref := make([]uint64, 16)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		addr := rng.Intn(16)
		val := rng.Uint64() & 0xFF
		doWrite := rng.Intn(4) != 0
		s.SetInputBus(wa, uint64(addr))
		s.SetInputBus(wd, val)
		s.SetInput(we, doWrite)
		s.Step()
		if doWrite {
			ref[addr] = val
		}
		r1, r2 := rng.Intn(16), rng.Intn(16)
		s.SetInputBus(ra, uint64(r1))
		s.SetInputBus(rb, uint64(r2))
		s.SetInput(we, false)
		s.Settle()
		if got := s.BusValue(pa); got != ref[r1] {
			t.Fatalf("read port A r%d: got %x want %x", r1, got, ref[r1])
		}
		if got := s.BusValue(pb); got != ref[r2] {
			t.Fatalf("read port B r%d: got %x want %x", r2, got, ref[r2])
		}
	}
}

func TestEqualIsZero(t *testing.T) {
	b := logic.NewBuilder()
	a := b.InputBus("a", 5)
	x := b.InputBus("x", 5)
	eq := b.MarkOutput(Equal(b, a, x), "eq")
	z := b.MarkOutput(IsZero(b, a), "z")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := logic.NewSimulator(n)
	for av := 0; av < 32; av++ {
		for xv := 0; xv < 32; xv++ {
			s.SetInputBus(a, uint64(av))
			s.SetInputBus(x, uint64(xv))
			s.Settle()
			if s.Value(eq) != (av == xv) {
				t.Fatalf("eq %d %d", av, xv)
			}
			if s.Value(z) != (av == 0) {
				t.Fatalf("zero %d", av)
			}
		}
	}
}
