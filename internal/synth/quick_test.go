package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// TestQuickMulSignedWidths property-tests the truncated signed
// multiplier across output widths against Go arithmetic.
func TestQuickMulSignedWidths(t *testing.T) {
	type circuit struct {
		n    *logic.Netlist
		a, x logic.Bus
		p    logic.Bus
	}
	build := func(w int) circuit {
		b := logic.NewBuilder()
		a := b.InputBus("a", 8)
		x := b.InputBus("x", 8)
		p := MulSigned(b, a, x, w)
		b.MarkOutputBus(p, "p")
		n, err := b.Build(logic.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return circuit{n, a, x, p}
	}
	for _, w := range []int{8, 12, 16, 18} {
		c := build(w)
		sim := logic.NewSimulator(c.n)
		mask := int64(1)<<uint(w) - 1
		f := func(av, xv int8) bool {
			sim.SetInputBus(c.a, uint64(uint8(av)))
			sim.SetInputBus(c.x, uint64(uint8(xv)))
			sim.Settle()
			want := uint64(int64(av)*int64(xv)) & uint64(mask)
			return sim.BusValue(c.p) == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
	}
}

// TestQuickAddSubNegate: for all a, AddSub(0, a, sub=1) == Negate(a).
func TestQuickAddSubNegate(t *testing.T) {
	b := logic.NewBuilder()
	a := b.InputBus("a", 10)
	zero := b.ConstBus(0, 10)
	viaAddSub, _ := AddSub(b, zero, a, b.Const(true))
	viaNegate := Negate(b, a)
	b.MarkOutputBus(viaAddSub, "s")
	b.MarkOutputBus(viaNegate, "n")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim := logic.NewSimulator(n)
	f := func(raw uint16) bool {
		v := uint64(raw) & 0x3FF
		sim.SetInputBus(a, v)
		sim.Settle()
		return sim.BusValue(viaAddSub) == sim.BusValue(viaNegate)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecoderOneHot: exactly one decoder line fires, at the
// selected index, for every width.
func TestQuickDecoderOneHot(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5} {
		b := logic.NewBuilder()
		sel := b.InputBus("s", w)
		outs := Decoder(b, sel)
		for i, o := range outs {
			b.Name(o, "")
			_ = i
		}
		bus := logic.Bus(outs)
		b.MarkOutputBus(bus, "y")
		n, err := b.Build(logic.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sim := logic.NewSimulator(n)
		for v := 0; v < 1<<uint(w); v++ {
			sim.SetInputBus(sel, uint64(v))
			sim.Settle()
			if got := sim.BusValue(bus); got != 1<<uint(v) {
				t.Fatalf("w=%d sel=%d: one-hot %b", w, v, got)
			}
		}
	}
}

// TestQuickLimiterIdempotent: limiting an already-limited (sign-extended
// 8-bit) value is the identity.
func TestQuickLimiterIdempotent(t *testing.T) {
	b := logic.NewBuilder()
	in := b.InputBus("in", 8)
	wide := b.SignExtend(in, 18)
	// Shift into the window: value << 4 occupies bits [11:4].
	shifted := make(logic.Bus, 18)
	for i := range shifted {
		if i < 4 {
			shifted[i] = b.Const(false)
		} else if i-4 < 8 {
			shifted[i] = in[i-4]
		} else {
			shifted[i] = in[7] // sign fill
		}
	}
	_ = wide
	out := Limiter(b, shifted, 4, 8)
	b.MarkOutputBus(out, "out")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim := logic.NewSimulator(n)
	f := func(v uint8) bool {
		sim.SetInputBus(in, uint64(v))
		sim.Settle()
		return sim.BusValue(out) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
