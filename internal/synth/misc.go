package synth

import "repro/internal/logic"

// Truncate emits the MAC truncater: when en=1 the low frac bits (to the
// right of the fixed-point binary point) are cleared; when en=0 the data
// passes through unchanged.
func Truncate(b *logic.Builder, data logic.Bus, frac int, en logic.NetID) logic.Bus {
	out := make(logic.Bus, len(data))
	nen := b.Not(en)
	for i := range data {
		if i < frac {
			out[i] = b.And(data[i], nen)
		} else {
			out[i] = data[i]
		}
	}
	return out
}

// Limiter emits the MAC limiter: it clips a wide signed accumulator value
// to the narrower output window data[lo+outW-1 : lo], saturating to the
// most positive/negative output code when the accumulator value does not
// fit. The value fits exactly when all bits above the window's sign bit
// agree with it.
func Limiter(b *logic.Builder, data logic.Bus, lo, outW int) logic.Bus {
	hi := lo + outW // first bit above the window
	if hi > len(data) {
		panic("synth: Limiter window exceeds input width")
	}
	windowSign := data[hi-1]
	// fits = all data[hi..] equal windowSign.
	fits := b.Const(true)
	if hi < len(data) {
		terms := make([]logic.NetID, 0, len(data)-hi)
		for i := hi; i < len(data); i++ {
			terms = append(terms, b.Xnor(data[i], windowSign))
		}
		fits = andAll(b, terms)
	}
	neg := data.MSB()
	out := make(logic.Bus, outW)
	for i := 0; i < outW; i++ {
		// Saturation value: 0111..1 for positive overflow, 1000..0 for
		// negative overflow.
		var sat logic.NetID
		if i == outW-1 {
			sat = neg
		} else {
			sat = b.Not(neg)
		}
		out[i] = b.Mux2(fits, sat, data[lo+i])
	}
	return out
}

// Decoder emits an n-to-2^n one-hot decoder.
func Decoder(b *logic.Builder, sel logic.Bus) []logic.NetID {
	n := len(sel)
	inv := make([]logic.NetID, n)
	for i, s := range sel {
		inv[i] = b.Not(s)
	}
	out := make([]logic.NetID, 1<<uint(n))
	for v := range out {
		terms := make([]logic.NetID, n)
		for i := 0; i < n; i++ {
			if v>>uint(i)&1 == 1 {
				terms[i] = sel[i]
			} else {
				terms[i] = inv[i]
			}
		}
		out[v] = andAll(b, terms)
	}
	return out
}

// MuxN emits a mux tree selecting inputs[sel]. The number of inputs must
// be exactly 1<<len(sel); all inputs must share one width.
func MuxN(b *logic.Builder, sel logic.Bus, inputs []logic.Bus) logic.Bus {
	if len(inputs) != 1<<uint(len(sel)) {
		panic("synth: MuxN input count mismatch")
	}
	layer := inputs
	for level := 0; level < len(sel); level++ {
		next := make([]logic.Bus, len(layer)/2)
		for i := range next {
			next[i] = b.Mux2Bus(sel[level], layer[2*i], layer[2*i+1])
		}
		layer = next
	}
	return layer[0]
}

// Register emits an enabled register: on each clock, when en=1 the
// register loads d, otherwise it holds. Returns the Q bus.
func Register(b *logic.Builder, d logic.Bus, en logic.NetID, name string) logic.Bus {
	return RegisterLoop(b, func(q logic.Bus) logic.Bus {
		return b.Mux2Bus(en, q, d)
	}, len(d), name)
}

// RegisterLoop emits a width-bit register whose next-state function is
// given by fn(q). fn receives the register's Q bus and must return the D
// bus; this enables feedback structures (hold registers, accumulators)
// despite the builder's create-before-use rule. Each DFF reads a deferred
// buffer that is resolved to fn's output once the Q nets exist.
func RegisterLoop(b *logic.Builder, fn func(q logic.Bus) logic.Bus, width int, name string) logic.Bus {
	feeds := make(logic.Bus, width)
	for i := range feeds {
		feeds[i] = b.DeferredBuf()
	}
	q := b.DFFBus(feeds, name)
	d := fn(q)
	if len(d) != width {
		panic("synth: RegisterLoop next-state width mismatch")
	}
	for i := range feeds {
		b.ResolveBuf(feeds[i], d[i])
	}
	return q
}
