// Package synth generates gate-level implementations of the datapath
// building blocks the DSP core is assembled from: ripple-carry
// adder/subtracters, a truncated signed array multiplier, an arithmetic
// barrel shifter, a saturating limiter, a fraction truncater, wide
// multiplexers, registers and a dual-read-port register file.
//
// Each generator emits primitive gates through a logic.Builder, so the
// result is directly simulatable and fault-simulatable. Generators are
// deliberately simple, technology-independent structures (ripple carries,
// mux trees): the stuck-at fault universe they induce is representative
// even though gate counts differ from a commercial synthesis flow.
package synth

import "repro/internal/logic"

// FullAdder emits a single-bit full adder.
func FullAdder(b *logic.Builder, a, x, cin logic.NetID) (sum, cout logic.NetID) {
	axor := b.Xor(a, x)
	sum = b.Xor(axor, cin)
	cout = b.Or(b.And(a, x), b.And(axor, cin))
	return sum, cout
}

// Adder emits a ripple-carry adder over equal-width buses and returns the
// sum and carry-out.
func Adder(b *logic.Builder, a, x logic.Bus, cin logic.NetID) (logic.Bus, logic.NetID) {
	if len(a) != len(x) {
		panicWidth("Adder", len(a), len(x))
	}
	sum := make(logic.Bus, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = FullAdder(b, a[i], x[i], carry)
	}
	return sum, carry
}

// AddSub emits a shared adder/subtracter: when sub=0 it computes a+x,
// when sub=1 it computes a-x (two's complement: a + ^x + 1).
func AddSub(b *logic.Builder, a, x logic.Bus, sub logic.NetID) (logic.Bus, logic.NetID) {
	if len(a) != len(x) {
		panicWidth("AddSub", len(a), len(x))
	}
	xi := make(logic.Bus, len(x))
	for i := range x {
		xi[i] = b.Xor(x[i], sub)
	}
	return Adder(b, a, xi, sub)
}

// Negate emits a two's complement negation (-a).
func Negate(b *logic.Builder, a logic.Bus) logic.Bus {
	zero := b.ConstBus(0, len(a))
	out, _ := AddSub(b, zero, a, b.Const(true))
	return out
}

// MulSigned emits a truncated signed array multiplier: the low outWidth
// bits of the two's complement product of a and x. Both operands are
// sign-extended to outWidth internally (the low bits of the extended
// unsigned product equal the two's complement product), and partial
// products beyond the output width are never generated.
func MulSigned(b *logic.Builder, a, x logic.Bus, outWidth int) logic.Bus {
	ae := b.SignExtend(a, outWidth)
	xe := b.SignExtend(x, outWidth)
	// Row 0 of partial products seeds the accumulator.
	acc := make(logic.Bus, outWidth)
	for j := 0; j < outWidth; j++ {
		acc[j] = b.And(ae[j], xe[0])
	}
	// Each subsequent row i adds (a & x[i]) << i into acc[i..].
	for i := 1; i < outWidth; i++ {
		width := outWidth - i
		row := make(logic.Bus, width)
		for j := 0; j < width; j++ {
			row[j] = b.And(ae[j], xe[i])
		}
		summed, _ := Adder(b, acc[i:], row, b.Const(false))
		copy(acc[i:], summed)
	}
	return acc
}

// Equal emits a bus-equality comparator (1 when a == x).
func Equal(b *logic.Builder, a, x logic.Bus) logic.NetID {
	if len(a) != len(x) {
		panicWidth("Equal", len(a), len(x))
	}
	terms := make([]logic.NetID, len(a))
	for i := range a {
		terms[i] = b.Xnor(a[i], x[i])
	}
	return andAll(b, terms)
}

// IsZero emits a zero detector (1 when every bit of a is 0).
func IsZero(b *logic.Builder, a logic.Bus) logic.NetID {
	if len(a) == 1 {
		return b.Not(a[0])
	}
	return b.Nor(a...)
}

// andAll reduces a list of nets with AND, tolerating a single input.
func andAll(b *logic.Builder, in []logic.NetID) logic.NetID {
	if len(in) == 1 {
		return b.Buf(in[0], "")
	}
	return b.And(in...)
}

func panicWidth(op string, a, b int) {
	panic("synth: " + op + " width mismatch")
}
