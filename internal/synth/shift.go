package synth

import "repro/internal/logic"

// ShifterMode enumerates the four control-bit settings of the DSP
// arithmetic shifter (paper Table 2 columns "Shifter 00".."Shifter 11").
type ShifterMode uint8

// Shifter control-bit encodings. Mode 01 (variable shift) is the mode the
// paper's Phase-3 constraint study identifies as essential: forbidding it
// collapses shifter fault coverage to ~13%.
const (
	// ShifterPass passes the input through unshifted.
	ShifterPass ShifterMode = 0 // control bits 00
	// ShifterVariable shifts by the signed 4-bit amount: positive values
	// shift left, negative values shift arithmetically right.
	ShifterVariable ShifterMode = 1 // control bits 01
	// ShifterLeft1 shifts left by one.
	ShifterLeft1 ShifterMode = 2 // control bits 10
	// ShifterRight1 shifts arithmetically right by one.
	ShifterRight1 ShifterMode = 3 // control bits 11
)

// BarrelShifter emits the DSP's arithmetic shifter. The data input is
// shifted according to mode (2 bits, encoding ShifterMode) and amount
// (4-bit signed, used only in ShifterVariable mode; the paper takes it
// from the A operand). Left shifts fill with zero; right shifts replicate
// the sign bit.
//
// The variable path computes the shift magnitude |s| (a two's complement
// negation when s is negative), barrel-shifts both directions through
// conditional 8/4/2/1 stages, and selects by the amount's sign — so a
// negative amount is an exact arithmetic right shift of |s| bits.
func BarrelShifter(b *logic.Builder, data logic.Bus, amount logic.Bus, mode logic.Bus) logic.Bus {
	if len(amount) != 4 {
		panic("synth: BarrelShifter amount must be 4 bits")
	}
	if len(mode) != 2 {
		panic("synth: BarrelShifter mode must be 2 bits")
	}
	n := len(data)

	// Magnitude: amount when non-negative, -amount (two's complement in
	// 4 bits: 0..8) when negative. |−8| = 8 wraps to 1000 in 4 bits,
	// which the mag[3]-conditioned 8-stage handles.
	dir := amount[3] // 1 = right shift
	neg := Negate(b, amount)
	mag := b.Mux2Bus(dir, amount, neg)

	// Left path: stages 8/4/2/1 (mag<=7 when dir=0, but stage 8 keeps the
	// datapath symmetric and correct for any mag).
	l := condShiftLeft(b, data, 8, mag[3])
	l = condShiftLeft(b, l, 4, mag[2])
	l = condShiftLeft(b, l, 2, mag[1])
	l = condShiftLeft(b, l, 1, mag[0])

	// Right path: arithmetic stages 8/4/2/1.
	r := condShiftRight(b, data, 8, mag[3])
	r = condShiftRight(b, r, 4, mag[2])
	r = condShiftRight(b, r, 2, mag[1])
	r = condShiftRight(b, r, 1, mag[0])

	v := b.Mux2Bus(dir, l, r)

	l1 := shiftLeftConst(b, data, 1)
	r1 := shiftRightConst(b, data, 1)

	// Final 4:1 selection by mode bits.
	out := make(logic.Bus, n)
	for i := 0; i < n; i++ {
		lo := b.Mux2(mode[0], data[i], v[i]) // mode1=0: 00->pass, 01->variable
		hi := b.Mux2(mode[0], l1[i], r1[i])  // mode1=1: 10->left1, 11->right1
		out[i] = b.Mux2(mode[1], lo, hi)
	}
	return out
}

// condShiftLeft shifts left by k when cond=1, else passes through.
func condShiftLeft(b *logic.Builder, data logic.Bus, k int, cond logic.NetID) logic.Bus {
	shifted := shiftLeftConst(b, data, k)
	return b.Mux2Bus(cond, data, shifted)
}

// condShiftRight arithmetically shifts right by k when cond=1.
func condShiftRight(b *logic.Builder, data logic.Bus, k int, cond logic.NetID) logic.Bus {
	shifted := shiftRightConst(b, data, k)
	return b.Mux2Bus(cond, data, shifted)
}

// shiftLeftConst returns data << k with zero fill (width preserved).
func shiftLeftConst(b *logic.Builder, data logic.Bus, k int) logic.Bus {
	n := len(data)
	out := make(logic.Bus, n)
	for i := 0; i < n; i++ {
		if i < k {
			out[i] = b.Const(false)
		} else {
			out[i] = data[i-k]
		}
	}
	return out
}

// shiftRightConst returns data >> k with sign fill (width preserved).
func shiftRightConst(b *logic.Builder, data logic.Bus, k int) logic.Bus {
	n := len(data)
	sign := data.MSB()
	out := make(logic.Bus, n)
	for i := 0; i < n; i++ {
		if i+k < n {
			out[i] = data[i+k]
		} else {
			out[i] = sign
		}
	}
	return out
}
