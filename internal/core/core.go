// Package core re-exports the paper's primary contribution — the
// metrics-driven self-test program generator and template architecture —
// under the repository's canonical layout. The implementation lives in
// package selftest; see that package for the phase-by-phase
// documentation. The supporting substrates are:
//
//	internal/logic     gate-level netlists and simulation
//	internal/synth     structural generators (adders, multiplier, ...)
//	internal/fault     stuck-at fault model and PROOFS-style simulator
//	internal/atpg      PODEM and time-frame unrolling
//	internal/lfsr      LFSRs and the MISR response compactor
//	internal/isa       the 17-bit DSP instruction set
//	internal/dsp       the behavioral pipelined core (Figures 4–6)
//	internal/dspgate   the gate-level core (the fault-simulation target)
//	internal/metrics   controllability/observability metrics (Table 2)
//	internal/bist      pseudorandom-BIST and sequential-ATPG baselines
//	internal/simpledsp the Figure-1 toy datapath (Table 1)
package core

import (
	"repro/internal/metrics"
	"repro/internal/selftest"
)

// Generator derives self-test programs from instruction-level
// testability metrics (paper Figure 3).
type Generator = selftest.Generator

// Program is a self-test program template (run-once prologue + loop).
type Program = selftest.Program

// Report documents a program's derivation (Tables 2–3, Figure 7).
type Report = selftest.Report

// ExpandOptions configure template expansion (Figure 2).
type ExpandOptions = selftest.ExpandOptions

// NewGenerator builds a generator over a metrics engine.
func NewGenerator(eng *metrics.Engine) *Generator { return selftest.NewGenerator(eng) }

// Expand simulates the template architecture, turning a program into the
// instruction-word stream the core receives.
var Expand = selftest.Expand
