package core

import (
	"testing"

	"repro/internal/metrics"
)

// TestReExports exercises the canonical entry point end to end at tiny
// scale: the aliases must produce a working generator and expansion.
func TestReExports(t *testing.T) {
	eng := metrics.NewEngine(metrics.Config{CTrials: 1500, OGoodRuns: 2, Seed: 4})
	gen := NewGenerator(eng)
	prog, report := gen.Generate()
	if prog.Len() == 0 {
		t.Fatal("empty program")
	}
	if report.Table == nil || report.Phase1 == nil || report.Phase2 == nil {
		t.Fatal("incomplete report")
	}
	vecs := Expand(prog, ExpandOptions{Iterations: 3})
	if vecs.Len() != 3*prog.Len() {
		t.Fatalf("expansion length %d", vecs.Len())
	}
}
