// Package artifacts is the content-addressed cross-job artifact cache:
// compiled evaluation programs (logic.Compiled) and fault-free machine
// traces (logic.GoodTrace) keyed by what they were derived from — the
// design's netlist content hash and a hash of the expanded vector
// sequence — instead of by job or process identity. Two submissions of
// the same (design, vector source) pair resolve to the same artifacts,
// so the second one performs zero compiles and zero good-machine
// cycles regardless of which job, matrix cell or queue retry asked.
//
// The store is a refcounted LRU under a byte budget. Leased entries
// (refs > 0) are never evicted — a shard may be replaying the trace —
// and a trace whose projected size exceeds a quarter of the budget is
// never cached at all, so one giant campaign cannot wipe the working
// set of everything else. Fill ownership is single-writer: the first
// leaseholder to ask fills the trace to completion while concurrent
// leaseholders fall back to their own run-local traces, and only the
// completed, immutable trace is ever shared (GoodTrace is safe for
// concurrent readers once no writer remains).
package artifacts

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"repro/internal/logic"
	"repro/internal/obs"
)

// DefaultBudget bounds the process-wide store: generous next to one
// campaign's artifacts (a full 8192-cycle DSP-core trace is a few MB)
// but firm enough that a long matrix campaign recycles memory instead
// of accreting every cell's trace forever.
const DefaultBudget int64 = 256 << 20

// Prometheus families (see docs/OBSERVABILITY.md naming). Hits count
// leases that found a complete trace — the full compile-and-simulate
// skip; misses count leases that found anything less. Bytes is the
// resident size across all stores (in practice the Default one).
var (
	ctrHits = obs.Default().CounterFamily("sbst.artifact_hits_total",
		"Artifact-cache leases that found a complete good-machine trace.").Counter()
	ctrMisses = obs.Default().CounterFamily("sbst.artifact_misses_total",
		"Artifact-cache leases that had to compile or simulate.").Counter()
	gaugeBytes = obs.Default().GaugeFamily("sbst.artifact_bytes",
		"Resident bytes of cached compiled programs and good traces.").Gauge()
)

// Key addresses an artifact entry by content: the design's netlist
// hash (designs.Design.Hash) and the vector-source hash (HashVectors
// over the expanded sequence). Everything a compiled program and a
// good trace depend on is a pure function of these two.
type Key struct {
	Design  string
	Vectors string
}

// HashVectors hashes an expanded vector sequence: the cycle count and
// each packed input word in order. Two VectorSeq implementations that
// expand identically (say, an LFSR spec and its pre-expanded dump)
// share artifacts by construction.
func HashVectors(n int, at func(int) uint64) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[:], at(i))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Store is a refcounted, byte-budgeted LRU of artifact entries.
type Store struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	tick    int64
	entries map[Key]*entry
}

type entry struct {
	key  Key
	refs int
	use  int64 // lru tick of the last lease

	prog     *logic.Compiled
	building chan struct{} // non-nil while a leaseholder compiles

	trace    *logic.GoodTrace
	complete bool // trace recorded through its full window; immutable
	filling  bool // a leaseholder owns the (incomplete) trace

	bytes int64 // accounted share of Store.bytes
}

// NewStore returns a store with the given byte budget (<=0 selects
// DefaultBudget). Tests and benchmarks use private stores; production
// paths share Default().
func NewStore(budget int64) *Store {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Store{budget: budget, entries: make(map[Key]*entry)}
}

var defaultStore = NewStore(DefaultBudget)

// Default returns the process-wide store the engine resolves artifacts
// through unless SimOptions.Artifacts overrides it.
func Default() *Store { return defaultStore }

// Budget returns the store's byte budget.
func (s *Store) Budget() int64 { return s.budget }

// Bytes returns the store's current resident size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len returns the number of cached entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Handle is one lease on an entry. The entry cannot be evicted while
// any handle on it is unreleased.
type Handle struct {
	s *Store
	e *entry
}

// Lease pins the entry for key, creating it on first use, and records
// the hit/miss outcome: a hit means a complete trace is already
// resident, so the leaseholder skips compilation and the good machine
// entirely.
func (s *Store) Lease(key Key) *Handle {
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &entry{key: key}
		s.entries[key] = e
	}
	e.refs++
	s.tick++
	e.use = s.tick
	hit := e.complete
	s.mu.Unlock()
	if hit {
		ctrHits.Add(1)
	} else {
		ctrMisses.Add(1)
	}
	return &Handle{s: s, e: e}
}

// Release drops the lease. Entries over budget become evictable the
// moment their last lease releases.
func (h *Handle) Release() {
	if h.e == nil {
		return
	}
	s, e := h.s, h.e
	h.e = nil
	s.mu.Lock()
	e.refs--
	if e.refs == 0 && e.prog == nil && e.trace == nil {
		// Nothing was ever produced under this key (the campaign failed
		// before compiling, or the trace was refused as oversized): drop
		// the empty entry instead of letting keys accrete. An incomplete
		// trace prefix is kept — a retry resumes its fill.
		delete(s.entries, e.key)
	}
	s.evictLocked()
	s.mu.Unlock()
}

// Program returns the cached compiled program, building it via build
// on first use. Concurrent leaseholders share one build: the first
// caller compiles, the rest wait on it.
func (h *Handle) Program(build func() *logic.Compiled) *logic.Compiled {
	s, e := h.s, h.e
	for {
		s.mu.Lock()
		if e.prog != nil {
			p := e.prog
			s.mu.Unlock()
			return p
		}
		if e.building != nil {
			ch := e.building
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		e.building = ch
		s.mu.Unlock()

		p := build()

		s.mu.Lock()
		e.prog = p
		e.building = nil
		s.addBytesLocked(e, p.SizeBytes())
		s.mu.Unlock()
		close(ch)
		return p
	}
}

// Trace returns the shared good trace for the entry, filling it on
// first use. If a complete trace is resident it is returned as-is (it
// is immutable; concurrent readers are safe). Otherwise the caller may
// become the single fill owner: fill runs outside the store lock on a
// full-length trace (numNets nets × cycles cycles) and must record it
// through cycles before returning. Returns nil — caller proceeds with
// its own run-local trace — when another leaseholder is mid-fill, or
// when the projected trace would exceed a quarter of the byte budget
// (such traces are never cached).
func (h *Handle) Trace(numNets, cycles int, fill func(*logic.GoodTrace)) *logic.GoodTrace {
	s, e := h.s, h.e
	s.mu.Lock()
	if e.complete {
		tr := e.trace
		s.mu.Unlock()
		return tr
	}
	projected := int64((numNets+63)/64) * 8 * int64(cycles)
	if e.filling || projected > s.budget/4 {
		s.mu.Unlock()
		return nil
	}
	if e.trace == nil {
		e.trace = logic.NewGoodTrace(numNets, cycles)
	}
	tr := e.trace
	e.filling = true
	s.mu.Unlock()

	done := false
	defer func() {
		s.mu.Lock()
		e.filling = false
		if done {
			e.complete = true
			s.addBytesLocked(e, tr.SizeBytes())
		}
		s.mu.Unlock()
	}()
	fill(tr)
	if tr.ValidThrough() < cycles {
		// The fill stopped short (interrupted campaign): keep the prefix
		// for a retry's fill to resume from, but don't publish it.
		return tr
	}
	done = true
	return tr
}

// addBytesLocked grows an entry's accounted size and evicts to budget.
func (s *Store) addBytesLocked(e *entry, delta int64) {
	e.bytes += delta
	s.bytes += delta
	gaugeBytes.Set(float64(s.bytes))
	s.evictLocked()
}

// evictLocked drops least-recently-leased unreferenced entries until
// the store fits its budget. Entries still leased are skipped — a
// shard may hold the trace — so a burst of concurrent oversized
// campaigns can transiently exceed the budget; it drains as they
// release.
func (s *Store) evictLocked() {
	for s.bytes > s.budget {
		var victim *entry
		for _, e := range s.entries {
			if e.refs > 0 || e.filling || e.building != nil {
				continue
			}
			if victim == nil || e.use < victim.use {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(s.entries, victim.key)
		s.bytes -= victim.bytes
		gaugeBytes.Set(float64(s.bytes))
	}
}
