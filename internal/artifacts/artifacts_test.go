package artifacts

import (
	"sync"
	"testing"

	"repro/internal/logic"
)

// tinyProgram compiles a minimal circuit for size-accounting tests.
func tinyProgram(t *testing.T) *logic.Compiled {
	t.Helper()
	b := logic.NewBuilder()
	a := b.Input("a")
	c := b.Input("b")
	b.MarkOutput(b.And(a, c), "y")
	n, err := b.Build(logic.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return logic.CompiledFor(n)
}

func TestHashVectorsContentAddressed(t *testing.T) {
	at := func(v []uint64) func(int) uint64 { return func(i int) uint64 { return v[i] } }
	h1 := HashVectors(3, at([]uint64{1, 2, 3}))
	h2 := HashVectors(3, at([]uint64{1, 2, 3}))
	if h1 != h2 {
		t.Fatalf("hash unstable: %s vs %s", h1, h2)
	}
	if h := HashVectors(3, at([]uint64{1, 2, 4})); h == h1 {
		t.Fatalf("content change did not change hash (%s)", h)
	}
	if h := HashVectors(2, at([]uint64{1, 2, 3})); h == h1 {
		t.Fatalf("length change did not change hash (%s)", h)
	}
	if len(h1) != 16 {
		t.Fatalf("hash length %d, want 16", len(h1))
	}
}

// TestLeaseLifecycle walks the intended engine usage end to end: miss,
// build, fill, release, then a second lease that hits everything.
func TestLeaseLifecycle(t *testing.T) {
	s := NewStore(1 << 20)
	key := Key{Design: "d1", Vectors: "v1"}

	h := s.Lease(key)
	builds := 0
	prog := h.Program(func() *logic.Compiled { builds++; return tinyProgram(t) })
	if prog == nil || builds != 1 {
		t.Fatalf("first Program: prog=%v builds=%d", prog, builds)
	}
	fills := 0
	tr := h.Trace(4, 8, func(tr *logic.GoodTrace) {
		fills++
		s := logic.NewCompiledSim(prog)
		for c := 0; c < 8; c++ {
			s.Settle()
			tr.Record(c, s)
		}
		var fr [1]uint64
		tr.SetFrontier(8, fr[:])
	})
	if tr == nil || fills != 1 {
		t.Fatalf("first Trace: tr=%v fills=%d", tr, fills)
	}
	h.Release()

	h2 := s.Lease(key)
	defer h2.Release()
	if p2 := h2.Program(func() *logic.Compiled { builds++; return nil }); p2 != prog || builds != 1 {
		t.Fatalf("second Program rebuilt (builds=%d)", builds)
	}
	if t2 := h2.Trace(4, 8, func(*logic.GoodTrace) { fills++ }); t2 != tr || fills != 1 {
		t.Fatalf("second Trace refilled (fills=%d)", fills)
	}
	if s.Bytes() <= 0 {
		t.Fatalf("store accounts no bytes after caching")
	}
}

// TestSingleFillOwner: while one leaseholder fills, a concurrent lease
// gets nil (and falls back to a run-local trace) instead of sharing a
// trace that still has a writer.
func TestSingleFillOwner(t *testing.T) {
	s := NewStore(1 << 20)
	key := Key{Design: "d", Vectors: "v"}
	h1, h2 := s.Lease(key), s.Lease(key)
	defer h1.Release()
	defer h2.Release()

	inFill := make(chan struct{})
	finish := make(chan struct{})
	var got2 *logic.GoodTrace
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		h1.Trace(4, 4, func(tr *logic.GoodTrace) {
			close(inFill)
			<-finish
			tr.EnsureCycles(4)
		})
	}()
	go func() {
		defer wg.Done()
		<-inFill
		got2 = h2.Trace(4, 4, func(*logic.GoodTrace) { t.Error("second fill owner") })
		close(finish)
	}()
	wg.Wait()
	if got2 != nil {
		t.Fatalf("concurrent lease got mid-fill trace %v", got2)
	}
}

// TestIncompleteFillNotPublished: a fill that stops short (interrupted
// campaign) keeps its prefix for resumption but is not served as
// complete to later leases.
func TestIncompleteFillNotPublished(t *testing.T) {
	s := NewStore(1 << 20)
	key := Key{Design: "d", Vectors: "v"}
	h := s.Lease(key)
	h.Trace(4, 8, func(tr *logic.GoodTrace) {}) // records nothing
	h.Release()

	h2 := s.Lease(key)
	defer h2.Release()
	resumed := false
	tr := h2.Trace(4, 8, func(tr *logic.GoodTrace) {
		resumed = true
		if tr.ValidThrough() != 0 {
			t.Fatalf("prefix lost: ValidThrough=%d", tr.ValidThrough())
		}
		sim := logic.NewCompiledSim(tinyProgram(t))
		for c := 0; c < 8; c++ {
			sim.Settle()
			tr.Record(c, sim)
		}
		var fr [1]uint64
		tr.SetFrontier(8, fr[:])
	})
	if !resumed || tr == nil {
		t.Fatalf("second lease did not resume the fill (resumed=%v tr=%v)", resumed, tr)
	}
}

// TestOversizedTraceNeverCached: a projected trace above budget/4 is
// refused outright so one giant campaign cannot evict everything else.
func TestOversizedTraceNeverCached(t *testing.T) {
	s := NewStore(4096) // budget/4 = 1KiB
	h := s.Lease(Key{Design: "d", Vectors: "v"})
	defer h.Release()
	// 64 nets × 2000 cycles → 16000 bytes projected ≫ 1KiB.
	if tr := h.Trace(64, 2000, func(*logic.GoodTrace) { t.Fatal("fill ran") }); tr != nil {
		t.Fatalf("oversized trace cached: %v", tr)
	}
}

// TestEvictionLRUAndRefs: over budget, the least-recently-leased
// unreferenced entry goes first; leased entries survive even when the
// store is over budget. Each trace here is ~248 bytes (30 cycles × one
// word + frontier) against a 1 KiB budget, so the fifth fill overflows.
func TestEvictionLRUAndRefs(t *testing.T) {
	s := NewStore(1024)
	const cycles = 30
	fill := func(tr *logic.GoodTrace) {
		sim := logic.NewCompiledSim(tinyProgram(t))
		for c := 0; c < cycles; c++ {
			sim.Settle()
			tr.Record(c, sim)
		}
		var fr [1]uint64
		tr.SetFrontier(cycles, fr[:])
	}
	key := func(i int) Key { return Key{Design: string(rune('a' + i)), Vectors: "v"} }

	// e0 is leased for the whole test: oldest, but pinned.
	h0 := s.Lease(key(0))
	if h0.Trace(4, cycles, fill) == nil {
		t.Fatal("fill refused — budget/4 math in the test is off")
	}
	for i := 1; i < 5; i++ {
		h := s.Lease(key(i))
		if h.Trace(4, cycles, fill) == nil {
			t.Fatalf("fill %d refused", i)
		}
		h.Release()
	}
	if _, ok := s.entries[key(0)]; !ok {
		t.Fatal("leased entry evicted despite refs > 0")
	}
	if _, ok := s.entries[key(1)]; ok {
		t.Fatal("least-recently-leased unreferenced entry survived overflow")
	}
	if _, ok := s.entries[key(4)]; !ok {
		t.Fatal("most recent entry evicted")
	}
	if s.Bytes() > s.Budget() {
		t.Fatalf("store over budget after eviction: %d > %d", s.Bytes(), s.Budget())
	}
	h0.Release()
}

// TestHitMissCounters: the sbst_artifact_{hits,misses} counters move
// with lease outcomes.
func TestHitMissCounters(t *testing.T) {
	s := NewStore(1 << 20)
	key := Key{Design: "metrics", Vectors: "v"}
	hits0, misses0 := ctrHits.Load(), ctrMisses.Load()

	h := s.Lease(key)
	h.Trace(4, 1, func(tr *logic.GoodTrace) {
		sim := logic.NewCompiledSim(tinyProgram(t))
		sim.Settle()
		tr.Record(0, sim)
		var fr [1]uint64
		tr.SetFrontier(1, fr[:])
	})
	h.Release()
	s.Lease(key).Release()

	if d := ctrMisses.Load() - misses0; d < 1 {
		t.Fatalf("miss counter delta %d, want >=1", d)
	}
	if d := ctrHits.Load() - hits0; d < 1 {
		t.Fatalf("hit counter delta %d, want >=1", d)
	}
}
