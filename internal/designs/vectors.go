package designs

import (
	"repro/internal/fault"
	"repro/internal/lfsr"
)

// PseudorandomVectors generates count pseudorandom test vectors for a
// design with width primary inputs (≤64, the fault simulator's packed
// word limit). Bit i of each vector drives Inputs()[i].
//
// The generator is a 32-bit LFSR with the registry's primitive
// polynomial, drained in 32-bit chunks per vector and masked to width —
// deterministic in (width, count, seed) everywhere, like the hardware
// BIST generator it stands in for. The paper's DSP core keeps its
// original 17-bit generator (internal/bist) for bit-compatibility with
// published coverage numbers; this one serves every other design in
// the registry, whose port widths the 17-bit LFSR cannot cover.
func PseudorandomVectors(width, count int, seed uint64) fault.Vectors {
	if width <= 0 || width > 64 || count <= 0 {
		return nil
	}
	gen := lfsr.MustNew(32, seed)
	chunks := (width + 31) / 32
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<uint(width) - 1
	}
	vecs := make(fault.Vectors, count)
	for i := range vecs {
		var v uint64
		for c := 0; c < chunks; c++ {
			v |= gen.Next() << uint(32*c)
		}
		vecs[i] = v & mask
	}
	return vecs
}
