package designs

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/synth"
)

// FamilyConfig parameterizes the generated core family: a register-file
// MAC datapath assembled from the same internal/synth generators as the
// paper's DSP core, with the paper's fixed choices (16-bit datapath,
// barrel shifter, limiter) opened up as knobs. Each configuration is a
// distinct design with its own content hash, so campaigns can sweep
// structure — "does the scheme's coverage hold at 8 bits without the
// limiter?" — instead of measuring one core.
type FamilyConfig struct {
	// Width is the datapath width in bits (4..32).
	Width int
	// Regs is the register-file depth (power of two, 2..16).
	Regs int
	// Barrel includes the 4-stage barrel shifter on the ALU's fourth
	// leg; without it the leg is a bitwise XOR.
	Barrel bool
	// Limiter includes the saturating limiter between accumulator and
	// writeback; without it the writeback truncates.
	Limiter bool
	// Pipeline is the output register depth (1..4): 1 registers the
	// result once (the accumulator), each extra level adds a DFF bus.
	Pipeline int
}

// Slug renders the canonical parameter string, e.g. "w16r8s1l1p1".
// Parse("fam/" + cfg.Slug()) round-trips.
func (c FamilyConfig) Slug() string {
	return fmt.Sprintf("w%dr%ds%dl%dp%d", c.Width, c.Regs, b2i(c.Barrel), b2i(c.Limiter), c.Pipeline)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// Check validates the parameter ranges.
func (c FamilyConfig) Check() error {
	if c.Width < 4 || c.Width > 32 {
		return fmt.Errorf("width %d out of range 4..32", c.Width)
	}
	if c.Regs < 2 || c.Regs > 16 || bits.OnesCount(uint(c.Regs)) != 1 {
		return fmt.Errorf("regs %d must be a power of two in 2..16", c.Regs)
	}
	if c.Pipeline < 1 || c.Pipeline > 4 {
		return fmt.Errorf("pipeline %d out of range 1..4", c.Pipeline)
	}
	return nil
}

// ParseFamily parses a family parameter slug ("w16r8s1l1p1"). Fields
// must appear in w-r-s-l-p order; s/l are 0 or 1.
func ParseFamily(slug string) (FamilyConfig, error) {
	var cfg FamilyConfig
	rest := slug
	field := func(tag string) (int, error) {
		if !strings.HasPrefix(rest, tag) {
			return 0, fmt.Errorf("want %q at %q (format w<W>r<R>s<0|1>l<0|1>p<P>)", tag, rest)
		}
		rest = rest[len(tag):]
		i := 0
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		if i == 0 {
			return 0, fmt.Errorf("missing number after %q", tag)
		}
		v, err := strconv.Atoi(rest[:i])
		rest = rest[i:]
		return v, err
	}
	flag := func(tag string) (bool, error) {
		v, err := field(tag)
		if err != nil {
			return false, err
		}
		if v != 0 && v != 1 {
			return false, fmt.Errorf("%s must be 0 or 1, got %d", tag, v)
		}
		return v == 1, nil
	}
	var err error
	if cfg.Width, err = field("w"); err != nil {
		return cfg, err
	}
	if cfg.Regs, err = field("r"); err != nil {
		return cfg, err
	}
	if cfg.Barrel, err = flag("s"); err != nil {
		return cfg, err
	}
	if cfg.Limiter, err = flag("l"); err != nil {
		return cfg, err
	}
	if cfg.Pipeline, err = field("p"); err != nil {
		return cfg, err
	}
	if rest != "" {
		return cfg, fmt.Errorf("trailing %q in family slug", rest)
	}
	return cfg, cfg.Check()
}

// BuildFamily generates the configured family member. The datapath:
//
//	din[W], wa/ra[log2 R], op[2], wen, sh[2] (Barrel only)  — inputs
//	regfile: R×W, write port driven by the writeback result
//	ALU (op): 00 a+din · 01 a−din · 10 a×din (low W) ·
//	          11 shifter(a) when Barrel, else a⊕din
//	accumulator: W+2-bit running sum of the ALU result
//	writeback/dout: limiter window [W-1:0] of the accumulator when
//	          Limiter, else its low W bits; Pipeline−1 extra DFF stages
//	outputs: dout[W] and an accumulator zero flag
//
// The writeback closes a register-file feedback loop through deferred
// buffers, exactly as the DSP core's accumulator does — so the family
// exercises the same sequential-depth behavior the paper's methodology
// targets, at whatever width the campaign asks for.
func BuildFamily(cfg FamilyConfig) (*logic.Netlist, error) {
	if err := cfg.Check(); err != nil {
		return nil, fmt.Errorf("designs: family %s: %w", cfg.Slug(), err)
	}
	b := logic.NewBuilder()
	addrW := bits.TrailingZeros(uint(cfg.Regs))

	din := b.InputBus("din", cfg.Width)
	wa := b.InputBus("wa", addrW)
	ra := b.InputBus("ra", addrW)
	op := b.InputBus("op", 2)
	wen := b.Input("wen")
	var sh logic.Bus
	if cfg.Barrel {
		sh = b.InputBus("sh", 2)
	}

	// Write-data feedback: the register file is written with the
	// pre-pipeline result, which depends on its own read port. DFFs
	// break the cycle; deferred buffers let us build in this order.
	wb := make(logic.Bus, cfg.Width)
	for i := range wb {
		wb[i] = b.DeferredBuf()
	}

	var a logic.Bus
	b.Scoped("regfile", func() {
		rf := synth.RegisterFile(b, synth.RegisterFileConfig{NumRegs: cfg.Regs, Width: cfg.Width}, wa, wb, wen)
		a = rf.ReadPort(b, ra)
	})

	var alu logic.Bus
	b.Scoped("alu", func() {
		sum, _ := synth.Adder(b, a, din, b.Const(false))
		diff, _ := synth.AddSub(b, a, din, b.Const(true))
		prod := synth.MulSigned(b, a, din, cfg.Width)
		var fourth logic.Bus
		if cfg.Barrel {
			b.Scoped("shifter", func() {
				fourth = synth.BarrelShifter(b, a, din[:4], sh)
			})
		} else {
			fourth = make(logic.Bus, cfg.Width)
			for i := range fourth {
				fourth[i] = b.Xor(a[i], din[i])
			}
		}
		alu = synth.MuxN(b, op, []logic.Bus{sum, diff, prod, fourth})
	})

	accW := cfg.Width + 2
	var acc logic.Bus
	b.Scoped("acc", func() {
		acc = synth.RegisterLoop(b, func(q logic.Bus) logic.Bus {
			next, _ := synth.Adder(b, q, b.SignExtend(alu, accW), b.Const(false))
			return next
		}, accW, "acc")
	})

	var result logic.Bus
	if cfg.Limiter {
		b.Scoped("limiter", func() {
			result = synth.Limiter(b, acc, 0, cfg.Width)
		})
	} else {
		result = acc[:cfg.Width]
	}
	for i := range wb {
		b.ResolveBuf(wb[i], result[i])
	}

	dout := result
	for p := 1; p < cfg.Pipeline; p++ {
		dout = b.DFFBus(dout, fmt.Sprintf("pipe%d", p))
	}
	b.MarkOutputBus(dout, "dout")
	b.MarkOutput(synth.IsZero(b, acc), "zero")

	n, err := b.Build(logic.BuildOptions{InsertFanoutBranches: true})
	if err != nil {
		return nil, fmt.Errorf("designs: family %s: %w", cfg.Slug(), err)
	}
	return n, nil
}
