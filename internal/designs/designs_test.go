package designs

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestParse pins the ID grammar: canonicalization, the default alias,
// and rejection of everything unknown with ErrUnknown.
func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in, want string
	}{
		{"", "dsp"},
		{"dsp", "dsp"},
		{"fam/w8r4s1l1p2", "fam/w8r4s1l1p2"},
		{"fam/w16r8s0l0p1", "fam/w16r8s0l0p1"},
		{"bench/s27", "bench/s27"},
		{"bench/c432", "bench/c432"},
	} {
		ref, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if ref.ID != tc.want {
			t.Errorf("Parse(%q).ID = %q, want %q", tc.in, ref.ID, tc.want)
		}
	}
	for _, bad := range []string{
		"nope", "fam/", "fam/w8", "fam/w99r4s1l1p1", "fam/w8r3s1l1p1",
		"fam/w8r4s2l1p1", "fam/w8r4s1l1p0", "fam/w8r4s1l1p1x",
		"bench/ghost", "bench/../s27", "bench/", "DSP",
	} {
		if err := Validate(bad); err == nil {
			t.Errorf("Validate(%q) accepted an invalid ID", bad)
		} else if !strings.Contains(err.Error(), "unknown design") {
			t.Errorf("Validate(%q) error %v does not wrap ErrUnknown", bad, err)
		}
	}
}

// TestFamilySlugRoundTrip: every valid config round-trips through its
// slug.
func TestFamilySlugRoundTrip(t *testing.T) {
	for _, cfg := range []FamilyConfig{
		{Width: 4, Regs: 2, Pipeline: 1},
		{Width: 16, Regs: 8, Barrel: true, Limiter: true, Pipeline: 2},
		{Width: 32, Regs: 16, Barrel: true, Pipeline: 4},
	} {
		got, err := ParseFamily(cfg.Slug())
		if err != nil {
			t.Fatalf("ParseFamily(%q): %v", cfg.Slug(), err)
		}
		if got != cfg {
			t.Fatalf("ParseFamily(%q) = %+v, want %+v", cfg.Slug(), got, cfg)
		}
	}
}

// TestBuildBundled builds every bundled design — the DSP core and each
// embedded .bench — and checks the invariants the engine relies on:
// ≤64 primary inputs, a non-empty collapsed fault list, and a stable
// hash across rebuilds.
func TestBuildBundled(t *testing.T) {
	for _, id := range Bundled() {
		d, err := Build(id)
		if err != nil {
			t.Fatalf("Build(%q): %v", id, err)
		}
		if d.ID != id {
			t.Errorf("%s: built ID %q", id, d.ID)
		}
		if n := len(d.Netlist.Inputs()); n == 0 || n > 64 {
			t.Errorf("%s: %d primary inputs", id, n)
		}
		if len(d.Netlist.Outputs()) == 0 {
			t.Errorf("%s: no outputs", id)
		}
		if len(d.Faults) == 0 {
			t.Errorf("%s: empty fault list", id)
		}
		if (id == DefaultID) != (d.Core != nil) {
			t.Errorf("%s: Core presence wrong (InstructionDriven=%v)", id, d.InstructionDriven())
		}
		again, err := Build(id)
		if err != nil {
			t.Fatalf("rebuild %q: %v", id, err)
		}
		if d.Hash != again.Hash {
			t.Errorf("%s: hash unstable across builds: %s vs %s", id, d.Hash, again.Hash)
		}
		if len(d.Faults) != len(again.Faults) {
			t.Errorf("%s: fault list unstable: %d vs %d", id, len(d.Faults), len(again.Faults))
		}
	}
}

// TestHashesDistinct: different designs must hash differently — the
// hash is the cross-process identity campaigns key on.
func TestHashesDistinct(t *testing.T) {
	ids := append(Bundled(), "fam/w8r4s0l0p1", "fam/w8r4s1l1p1", "fam/w8r4s1l1p2", "fam/w12r4s1l1p1")
	seen := map[string]string{}
	for _, id := range ids {
		d, err := Build(id)
		if err != nil {
			t.Fatalf("Build(%q): %v", id, err)
		}
		if prev, dup := seen[d.Hash]; dup {
			t.Errorf("%s and %s share hash %s", prev, id, d.Hash)
		}
		seen[d.Hash] = id
	}
}

// TestFamilyFaultSim: a quick fault simulation on small family members
// must detect a healthy share of faults — the datapath is controllable
// and observable, not a decorative netlist.
func TestFamilyFaultSim(t *testing.T) {
	for _, id := range []string{"fam/w4r2s0l0p1", "fam/w6r4s1l1p2"} {
		d, err := Build(id)
		if err != nil {
			t.Fatalf("Build(%q): %v", id, err)
		}
		vecs := PseudorandomVectors(len(d.Netlist.Inputs()), 400, 1)
		res, err := fault.Simulate(d.Netlist, vecs, fault.SimOptions{Faults: d.Faults})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		detected := 0
		for _, at := range res.DetectedAt {
			if at >= 0 {
				detected++
			}
		}
		cov := float64(detected) / float64(len(res.Faults))
		t.Logf("%s: %d/%d faults detected (%.1f%%) in %d cycles", id, detected, len(res.Faults), 100*cov, res.Cycles)
		if cov < 0.5 {
			t.Errorf("%s: pseudorandom coverage %.1f%% — datapath looks untestable", id, 100*cov)
		}
	}
}

// TestBenchFaultSim: the bundled .bench designs respond to
// width-matched pseudorandom vectors.
func TestBenchFaultSim(t *testing.T) {
	for _, id := range []string{"bench/s27", "bench/c432", "bench/c880"} {
		d, err := Build(id)
		if err != nil {
			t.Fatalf("Build(%q): %v", id, err)
		}
		vecs := PseudorandomVectors(len(d.Netlist.Inputs()), 300, 7)
		res, err := fault.Simulate(d.Netlist, vecs, fault.SimOptions{Faults: d.Faults})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		detected := 0
		for _, at := range res.DetectedAt {
			if at >= 0 {
				detected++
			}
		}
		t.Logf("%s: %d/%d faults detected in %d cycles", id, detected, len(res.Faults), res.Cycles)
		if detected == 0 {
			t.Errorf("%s: zero faults detected", id)
		}
	}
}

// TestPseudorandomVectorsDeterministic: same (width, count, seed) →
// same sequence; vectors stay within the width mask; degenerate
// arguments return nil.
func TestPseudorandomVectorsDeterministic(t *testing.T) {
	a := PseudorandomVectors(36, 64, 3)
	b := PseudorandomVectors(36, 64, 3)
	if len(a) != 64 {
		t.Fatalf("got %d vectors", len(a))
	}
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vector %d differs across identical calls", i)
		}
		if a[i]>>36 != 0 {
			t.Fatalf("vector %d = %#x exceeds 36 bits", i, a[i])
		}
		if i > 0 && a[i] != a[i-1] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("constant vector stream")
	}
	if PseudorandomVectors(0, 10, 1) != nil || PseudorandomVectors(65, 10, 1) != nil || PseudorandomVectors(8, 0, 1) != nil {
		t.Fatal("degenerate arguments must return nil")
	}
}
