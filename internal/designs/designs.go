// Package designs is the design registry: it turns "which circuit does
// this campaign run against" from a compile-time constant into a
// runtime parameter. A design ID is a short string every process in
// the fleet resolves to the identical built netlist and collapsed
// fault list, so a coordinator and its workers agree on fault indices
// by construction:
//
//	dsp                 the paper's gate-level DSP core (the default)
//	fam/w8r4s1l1p2      a parameterized core-family member (family.go)
//	bench/c432          a bundled ISCAS-style .bench netlist
//	                    (examples/iscas, embedded in the binary)
//
// Build is deterministic and pure — no process-wide state — so callers
// layer their own caching (internal/engine keeps an LRU of built
// designs). Every Design carries a stable content hash of its netlist,
// the anchor for cross-process result caching and provenance.
package designs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/examples/iscas"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/logic"
)

// DefaultID names the design jobs get when their spec leaves the
// design field empty: the paper's DSP core.
const DefaultID = "dsp"

// ErrUnknown marks design IDs the registry cannot resolve. The API
// layer maps it to the unknown_design error code (HTTP 422).
var ErrUnknown = errors.New("designs: unknown design")

// Kind discriminates the registry's design sources.
type Kind int

// The design sources.
const (
	KindDSP Kind = iota
	KindFamily
	KindBench
)

// Ref is a parsed, validated design ID — cheap to obtain (no netlist
// is built), canonical in its ID string.
type Ref struct {
	ID     string
	Kind   Kind
	Family FamilyConfig // valid when Kind == KindFamily
	Bench  string       // bundled netlist name when Kind == KindBench
}

// InstructionDriven reports whether the design's primary inputs form
// the DSP instruction port — the designs that can run program and
// selftest stimulus. Everything else is driven by raw vectors only.
func (r Ref) InstructionDriven() bool { return r.Kind == KindDSP }

// Parse validates a design ID. The empty ID is the default design.
// Unresolvable IDs return an error wrapping ErrUnknown.
func Parse(id string) (Ref, error) {
	switch {
	case id == "" || id == DefaultID:
		return Ref{ID: DefaultID, Kind: KindDSP}, nil
	case strings.HasPrefix(id, "fam/"):
		cfg, err := ParseFamily(strings.TrimPrefix(id, "fam/"))
		if err != nil {
			return Ref{}, fmt.Errorf("%w: %q: %v", ErrUnknown, id, err)
		}
		return Ref{ID: "fam/" + cfg.Slug(), Kind: KindFamily, Family: cfg}, nil
	case strings.HasPrefix(id, "bench/"):
		name := strings.TrimPrefix(id, "bench/")
		if _, ok := iscas.Source(name); !ok {
			return Ref{}, fmt.Errorf("%w: %q (bundled: %s)", ErrUnknown, id, strings.Join(iscas.Names(), ", "))
		}
		return Ref{ID: "bench/" + name, Kind: KindBench, Bench: name}, nil
	}
	return Ref{}, fmt.Errorf("%w: %q (want dsp, fam/<params> or bench/<name>)", ErrUnknown, id)
}

// Validate is Parse for callers that only need the verdict.
func Validate(id string) error {
	_, err := Parse(id)
	return err
}

// Bundled lists the design IDs that name a fixed circuit (the DSP core
// and every embedded .bench netlist) — the /v1/meta designs document.
// Family members are omitted: they are a parameter space, not a list.
func Bundled() []string {
	out := []string{DefaultID}
	for _, n := range iscas.Names() {
		out = append(out, "bench/"+n)
	}
	return out
}

// Design is a built, simulation-ready circuit: the levelized netlist,
// its collapsed stuck-at fault list (the same extraction every
// campaign uses), and a stable content hash.
type Design struct {
	// ID is the canonical design ID (Parse's Ref.ID).
	ID string
	// Hash is the content hash of the built netlist — equal across
	// processes and builds for the same ID.
	Hash string
	// Netlist is the built circuit, fanout branches inserted for
	// pin-accurate fault sites.
	Netlist *logic.Netlist
	// Faults is the collapsed stuck-at fault list over Netlist.
	Faults []fault.Fault
	// Core is the full DSP fixture (buses, component regions) for the
	// dsp design; nil for every other design.
	Core *dspgate.Core
}

// InstructionDriven mirrors Ref.InstructionDriven on the built design.
func (d *Design) InstructionDriven() bool { return d.Core != nil }

// SizeBytes estimates the built design's resident size — the netlist
// plus the collapsed fault list — for the engine's byte-budgeted
// design cache.
func (d *Design) SizeBytes() int64 {
	return d.Netlist.SizeBytes() + int64(len(d.Faults))*8
}

// Build resolves a design ID to a built Design. Deterministic: the
// same ID yields the same netlist, fault list and hash in every
// process.
func Build(id string) (*Design, error) {
	ref, err := Parse(id)
	if err != nil {
		return nil, err
	}
	d := &Design{ID: ref.ID}
	switch ref.Kind {
	case KindDSP:
		core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
		if err != nil {
			return nil, err
		}
		d.Core = core
		d.Netlist = core.Netlist
	case KindFamily:
		n, err := BuildFamily(ref.Family)
		if err != nil {
			return nil, err
		}
		d.Netlist = n
	case KindBench:
		src, _ := iscas.Source(ref.Bench)
		n, err := logic.ReadBench(strings.NewReader(src), logic.BuildOptions{InsertFanoutBranches: true})
		if err != nil {
			return nil, fmt.Errorf("designs: bench/%s: %w", ref.Bench, err)
		}
		d.Netlist = n
	}
	d.Faults, _ = fault.Collapse(d.Netlist, fault.AllFaults(d.Netlist))
	d.Hash = HashNetlist(d.Netlist)
	return d, nil
}

// HashNetlist computes a stable content hash of a netlist's structure:
// gate kinds and connectivity, port order, and net names (names are
// deterministic per design and feed exported formats, so they are part
// of identity). Two builds of the same design ID hash identically in
// any process.
func HashNetlist(n *logic.Netlist) string {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(n.NumNets()))
	for id := 0; id < n.NumNets(); id++ {
		g := n.Gate(logic.NetID(id))
		word(uint64(g.Kind))
		word(uint64(len(g.In)))
		for _, in := range g.In {
			word(uint64(in))
		}
		name := n.NameOf(logic.NetID(id))
		word(uint64(len(name)))
		h.Write([]byte(name))
	}
	ports := func(ids []logic.NetID) {
		word(uint64(len(ids)))
		for _, id := range ids {
			word(uint64(id))
		}
	}
	ports(n.Inputs())
	ports(n.Outputs())
	ports(n.DFFs())
	regions := append([]string(nil), n.Regions()...)
	sort.Strings(regions)
	for _, r := range regions {
		h.Write([]byte(r))
		ports(n.RegionNets(r))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
