package tracemerge

import (
	"io"
	"math"
	"strings"
	"testing"
)

const (
	coordTrace = `{"t":0,"type":"trace_open","name":"sbstd-1","epoch_unix":1000.0,"pid":1}
{"t":0.1,"type":"span_start","name":"engine.dist","trace":"aaaa"}
{"t":0.2,"type":"phase","name":"lease","trace":"aaaa","event":"granted"}
{"t":0.3,"type":"span_start","name":"other.job","trace":"bbbb"}
{"t":0.4,"type":"span_end","name":"other.job","trace":"bbbb","seconds":0.1}
{"t":3.0,"type":"span_end","name":"engine.dist","trace":"aaaa","seconds":2.9}
`
	workerATrace = `{"t":0,"type":"trace_open","name":"worker-a","epoch_unix":1000.5,"pid":2}
{"t":0.1,"type":"span_start","name":"engine.sim","trace":"aaaa"}
{"t":1.0,"type":"span_end","name":"engine.sim","trace":"aaaa","seconds":0.9}
{"t":1.1,"type":"span_start","name":"engine.sim","trace":"aaaa"}
{"t":2.0,"type":"span_end","name":"engine.sim","trace":"aaaa","seconds":0.9}
`
	// worker-b dies mid-span: span_start with no matching end.
	workerBTrace = `{"t":0,"type":"trace_open","name":"worker-b","epoch_unix":1001.0,"pid":3}
{"t":0.1,"type":"span_start","name":"engine.sim","trace":"aaaa"}
{"t":0.6,"type":"phase","name":"worker/worker-b","trace":"aaaa","event":"unit_start"}
`
)

func mergeAll(t *testing.T, traceID string) *Timeline {
	t.Helper()
	tl, err := Merge(
		[]string{"coord.ndjson", "wa.ndjson", "wb.ndjson"},
		[]io.Reader{strings.NewReader(coordTrace), strings.NewReader(workerATrace), strings.NewReader(workerBTrace)},
		traceID)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestMergeSelectsDominantTrace(t *testing.T) {
	tl := mergeAll(t, "")
	if tl.Trace != "aaaa" {
		t.Fatalf("selected trace %q, want aaaa (dominant)", tl.Trace)
	}
}

func TestMergeAlignsAndPairsSpans(t *testing.T) {
	tl := mergeAll(t, "aaaa")
	if len(tl.Sources) != 3 {
		t.Fatalf("sources %v, want all three processes", tl.Sources)
	}
	// 1 coordinator span + 2 worker-a spans + 1 open worker-b span.
	if len(tl.Spans) != 4 {
		t.Fatalf("got %d spans %+v, want 4", len(tl.Spans), tl.Spans)
	}
	// Absolute alignment: coordinator epoch 1000.0, span at t=0.1..3.0.
	first := tl.Spans[0]
	if first.Source != "sbstd-1" || math.Abs(first.Start-1000.1) > 1e-9 || math.Abs(first.End-1003.0) > 1e-9 {
		t.Fatalf("coordinator span misaligned: %+v", first)
	}
	// The bbbb span must be filtered out.
	for _, s := range tl.Spans {
		if s.Name == "other.job" {
			t.Fatalf("foreign-trace span leaked: %+v", s)
		}
	}
	var open *Span
	for i := range tl.Spans {
		if tl.Spans[i].Open {
			open = &tl.Spans[i]
		}
	}
	if open == nil || open.Source != "worker-b" {
		t.Fatalf("want worker-b's unterminated span marked open, got %+v", tl.Spans)
	}
	if math.Abs(open.End-1001.6) > 1e-9 { // last event time in worker-b's file
		t.Fatalf("open span end %f, want the source's last event time 1001.6", open.End)
	}
}

func TestUtilizationUnionsIntervals(t *testing.T) {
	tl := mergeAll(t, "aaaa")
	util := tl.Utilization()
	wall := tl.Wall() // 1000.1 .. 1003.0 = 2.9s
	if math.Abs(wall-2.9) > 1e-9 {
		t.Fatalf("wall %f, want 2.9", wall)
	}
	// worker-a busy 0.9+0.9 = 1.8s of 2.9.
	if got, want := util["worker-a"], 1.8/2.9; math.Abs(got-want) > 1e-9 {
		t.Fatalf("worker-a utilization %f, want %f", got, want)
	}
	// Coordinator span covers the whole wall.
	if got := util["sbstd-1"]; math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("coordinator utilization %f, want 1.0", got)
	}
}

func TestCriticalPath(t *testing.T) {
	tl := mergeAll(t, "aaaa")
	path := tl.CriticalPath()
	if len(path) != 1 || path[0].Name != "engine.dist" {
		// The coordinator span strictly contains every other span, so the
		// greedy backward walk terminates on it alone.
		t.Fatalf("critical path %+v, want just the enclosing engine.dist span", path)
	}
	if got := path[0].Seconds(); math.Abs(got-2.9) > 1e-9 {
		t.Fatalf("critical path span %fs, want 2.9", got)
	}
}

func TestRecoverSpanFromEndEvent(t *testing.T) {
	// span_end with no start in the file: the "seconds" field rebuilds it.
	trace := `{"t":0,"type":"trace_open","name":"p","epoch_unix":100.0}
{"t":5.0,"type":"span_end","name":"orphan","trace":"x","seconds":2.0}
`
	tl, err := Merge([]string{"p.ndjson"}, []io.Reader{strings.NewReader(trace)}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Spans) != 1 {
		t.Fatalf("spans %+v", tl.Spans)
	}
	s := tl.Spans[0]
	if math.Abs(s.Start-103.0) > 1e-9 || math.Abs(s.End-105.0) > 1e-9 {
		t.Fatalf("recovered span [%f %f], want [103 105]", s.Start, s.End)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge([]string{"a"}, []io.Reader{strings.NewReader("")}, ""); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := Merge([]string{"a"}, []io.Reader{strings.NewReader(coordTrace)}, "zzzz"); err == nil {
		t.Fatal("unmatched trace ID must error")
	}
	if _, err := Merge([]string{"a"}, []io.Reader{strings.NewReader("not json\n")}, "x"); err == nil {
		t.Fatal("malformed NDJSON must error")
	}
}

func TestRenderSmoke(t *testing.T) {
	tl := mergeAll(t, "aaaa")
	var sb strings.Builder
	tl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"trace aaaa", "worker-a", "worker-b", "critical path", "(open)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
