// Package tracemerge stitches per-process NDJSON trace files into one
// campaign timeline. Each process (coordinator, worker) writes its own
// trace with relative timestamps; the trace_open header event carries
// the sink's epoch as absolute Unix seconds, and every event belonging
// to a distributed campaign carries the job's trace ID. Merging aligns
// the files on the absolute axis, selects one trace ID, pairs
// span_start/span_end events into spans, and computes the summaries
// cmd/sbst-trace renders: a per-worker utilization table and the
// critical path through the campaign's spans.
package tracemerge

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

// Span is one completed (or still-open) span on the absolute time axis.
type Span struct {
	// Source identifies the emitting process (trace_open's name, or the
	// file name when the header is missing).
	Source string
	// Name is the span name as emitted (e.g. "engine.dist",
	// "engine.sim/shard0/faultsim").
	Name string
	// Start and End are absolute Unix seconds.
	Start, End float64
	// Open marks a span whose span_end never arrived (crashed or
	// SIGKILLed process); End is the source's last event time.
	Open bool
}

// Seconds is the span's duration.
func (s Span) Seconds() float64 { return s.End - s.Start }

// Event is one non-span event on the absolute axis.
type Event struct {
	Source string
	T      float64 // absolute Unix seconds
	Type   string
	Name   string
	Fields map[string]any
}

// Timeline is the merged view of one campaign trace.
type Timeline struct {
	// Trace is the selected trace ID.
	Trace string
	// Sources lists the contributing processes in first-seen order.
	Sources []string
	// Spans are sorted by start time (ties by source, then name).
	Spans []Span
	// Events are the trace's non-span events, sorted by time.
	Events []Event
	// Start and End bound the trace on the absolute axis.
	Start, End float64
}

// Wall is the timeline's total wall-clock extent.
func (tl *Timeline) Wall() float64 { return tl.End - tl.Start }

// fileTrace is one parsed NDJSON file before merging.
type fileTrace struct {
	source string
	epoch  float64
	lines  []rawLine
	lastT  float64
	counts map[string]int // events per trace ID
}

type rawLine struct {
	t      float64
	typ    string
	name   string
	trace  string
	fields map[string]any
}

// MergeFiles parses and merges NDJSON trace files. An empty traceID
// auto-selects the ID with the most events across all files
// (lexicographically smallest on a tie).
func MergeFiles(paths []string, traceID string) (*Timeline, error) {
	named := make([]namedReader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		named = append(named, namedReader{name: filepath.Base(p), r: f})
	}
	return merge(named, traceID)
}

// Merge merges NDJSON traces from readers; names supply the fallback
// source labels for files without a trace_open header.
func Merge(names []string, readers []io.Reader, traceID string) (*Timeline, error) {
	if len(names) != len(readers) {
		return nil, fmt.Errorf("tracemerge: %d names for %d readers", len(names), len(readers))
	}
	named := make([]namedReader, len(readers))
	for i := range readers {
		named[i] = namedReader{name: names[i], r: readers[i]}
	}
	return merge(named, traceID)
}

type namedReader struct {
	name string
	r    io.Reader
}

func merge(inputs []namedReader, traceID string) (*Timeline, error) {
	files := make([]*fileTrace, 0, len(inputs))
	for _, in := range inputs {
		ft, err := parseFile(in.name, in.r)
		if err != nil {
			return nil, err
		}
		files = append(files, ft)
	}
	if traceID == "" {
		traceID = dominantTrace(files)
	}
	if traceID == "" {
		return nil, fmt.Errorf("tracemerge: no traced events in %d file(s)", len(inputs))
	}

	tl := &Timeline{Trace: traceID, Start: math.Inf(1), End: math.Inf(-1)}
	for _, ft := range files {
		// Open-span bookkeeping per span name, FIFO: concurrent same-name
		// spans pair earliest start with earliest end, which is exact for
		// the engine's nesting discipline and conservative otherwise.
		openSpans := make(map[string][]float64)
		contributed := false
		for _, ln := range ft.lines {
			if ln.trace != traceID {
				continue
			}
			contributed = true
			abs := ft.epoch + ln.t
			tl.observe(abs)
			switch ln.typ {
			case obs.EventSpanStart:
				openSpans[ln.name] = append(openSpans[ln.name], abs)
			case obs.EventSpanEnd:
				starts := openSpans[ln.name]
				if len(starts) > 0 {
					tl.Spans = append(tl.Spans, Span{
						Source: ft.source, Name: ln.name, Start: starts[0], End: abs,
					})
					openSpans[ln.name] = starts[1:]
				} else if secs, ok := ln.fields["seconds"].(float64); ok {
					// span_start lost (rotated file, partial capture): the
					// end event's own duration field reconstructs the span.
					tl.Spans = append(tl.Spans, Span{
						Source: ft.source, Name: ln.name, Start: abs - secs, End: abs,
					})
					tl.observe(abs - secs)
				}
			default:
				tl.Events = append(tl.Events, Event{
					Source: ft.source, T: abs, Type: ln.typ, Name: ln.name, Fields: ln.fields,
				})
			}
		}
		// Spans still open at end of file: the process died mid-span.
		for name, starts := range openSpans {
			for _, start := range starts {
				end := ft.epoch + ft.lastT
				if end < start {
					end = start
				}
				tl.Spans = append(tl.Spans, Span{
					Source: ft.source, Name: name, Start: start, End: end, Open: true,
				})
				tl.observe(end)
			}
		}
		if contributed {
			tl.Sources = append(tl.Sources, ft.source)
		}
	}
	if len(tl.Spans) == 0 && len(tl.Events) == 0 {
		return nil, fmt.Errorf("tracemerge: trace %s matches no events", traceID)
	}
	sort.Strings(tl.Sources)
	sort.Slice(tl.Spans, func(i, j int) bool {
		a, b := tl.Spans[i], tl.Spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Name < b.Name
	})
	sort.Slice(tl.Events, func(i, j int) bool { return tl.Events[i].T < tl.Events[j].T })
	return tl, nil
}

func (tl *Timeline) observe(t float64) {
	if t < tl.Start {
		tl.Start = t
	}
	if t > tl.End {
		tl.End = t
	}
}

func parseFile(name string, r io.Reader) (*fileTrace, error) {
	ft := &fileTrace{source: name, counts: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			return nil, fmt.Errorf("tracemerge: %s:%d: %v", name, lineNo, err)
		}
		ln := rawLine{fields: make(map[string]any)}
		for k, v := range obj {
			switch k {
			case "t":
				ln.t, _ = v.(float64)
			case "type":
				ln.typ, _ = v.(string)
			case "name":
				ln.name, _ = v.(string)
			case "trace":
				ln.trace, _ = v.(string)
			default:
				ln.fields[k] = v
			}
		}
		if ln.typ == obs.EventTraceOpen {
			if e, ok := ln.fields["epoch_unix"].(float64); ok {
				ft.epoch = e
			}
			if ln.name != "" {
				ft.source = ln.name
			}
			continue
		}
		if ln.t > ft.lastT {
			ft.lastT = ln.t
		}
		if ln.trace != "" {
			ft.counts[ln.trace]++
		}
		ft.lines = append(ft.lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracemerge: %s: %v", name, err)
	}
	return ft, nil
}

// dominantTrace picks the trace ID with the most events across files.
func dominantTrace(files []*fileTrace) string {
	totals := make(map[string]int)
	for _, ft := range files {
		for id, n := range ft.counts {
			totals[id] += n
		}
	}
	best, bestN := "", 0
	for id, n := range totals {
		if n > bestN || (n == bestN && (best == "" || id < best)) {
			best, bestN = id, n
		}
	}
	return best
}

// Utilization returns, per source, the fraction of the timeline's wall
// clock covered by at least one of that source's spans (interval
// union, so nested and overlapping spans are not double-counted).
func (tl *Timeline) Utilization() map[string]float64 {
	busy := make(map[string]float64)
	bySource := make(map[string][]Span)
	for _, s := range tl.Spans {
		bySource[s.Source] = append(bySource[s.Source], s)
	}
	for src, spans := range bySource {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		var total, curStart, curEnd float64
		curStart, curEnd = math.Inf(1), math.Inf(-1)
		for _, s := range spans {
			if s.Start > curEnd {
				if curEnd > curStart {
					total += curEnd - curStart
				}
				curStart, curEnd = s.Start, s.End
				continue
			}
			if s.End > curEnd {
				curEnd = s.End
			}
		}
		if curEnd > curStart {
			total += curEnd - curStart
		}
		busy[src] = total
	}
	out := make(map[string]float64, len(busy))
	wall := tl.Wall()
	for src, b := range busy {
		if wall > 0 {
			out[src] = b / wall
		} else {
			out[src] = 0
		}
	}
	return out
}

// CriticalPath walks the span set greedily backward from the span that
// ends last: each step jumps to the latest-ending span that started
// before the current one — the chain of work the campaign's wall clock
// could not have finished without. Returned in chronological order.
func (tl *Timeline) CriticalPath() []Span {
	if len(tl.Spans) == 0 {
		return nil
	}
	last := tl.Spans[0]
	for _, s := range tl.Spans {
		if s.End > last.End {
			last = s
		}
	}
	path := []Span{last}
	cur := last
	for {
		var next Span
		found := false
		for _, s := range tl.Spans {
			if s.Start < cur.Start && s.End > cur.Start {
				if !found || s.End > next.End || (s.End == next.End && s.Start < next.Start) {
					next, found = s, true
				}
			}
		}
		if !found {
			break
		}
		path = append(path, next)
		cur = next
	}
	// Reverse into chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Render writes the human-readable timeline summary.
func (tl *Timeline) Render(w io.Writer) {
	fmt.Fprintf(w, "trace %s: %d process(es), %d span(s), %d event(s), %.3fs wall\n",
		tl.Trace, len(tl.Sources), len(tl.Spans), len(tl.Events), tl.Wall())
	util := tl.Utilization()
	for _, src := range tl.Sources {
		n := 0
		for _, s := range tl.Spans {
			if s.Source == src {
				n++
			}
		}
		fmt.Fprintf(w, "  %-24s %3d span(s)  busy %5.1f%%\n", src, n, util[src]*100)
	}
	path := tl.CriticalPath()
	pathSecs := 0.0
	for _, s := range path {
		pathSecs += s.Seconds()
	}
	fmt.Fprintf(w, "critical path: %d span(s), %.3fs of %.3fs wall\n", len(path), pathSecs, tl.Wall())
	for _, s := range path {
		open := ""
		if s.Open {
			open = " (open)"
		}
		fmt.Fprintf(w, "  [%8.3f %8.3f] %-24s %s (%.3fs)%s\n",
			s.Start-tl.Start, s.End-tl.Start, s.Source, s.Name, s.Seconds(), open)
	}
	fmt.Fprintln(w, "spans:")
	for _, s := range tl.Spans {
		open := ""
		if s.Open {
			open = " (open)"
		}
		fmt.Fprintf(w, "  [%8.3f %8.3f] %-24s %s (%.3fs)%s\n",
			s.Start-tl.Start, s.End-tl.Start, s.Source, s.Name, s.Seconds(), open)
	}
}
