package api

// Job event stream wire types: GET /v1/jobs/{id}/events serves these
// as Server-Sent Events, one JSON-encoded JobEvent per frame, with the
// SSE id field set to Seq and the SSE event field set to Type. A
// client resumes after a dropped connection by sending the last Seq it
// saw as the Last-Event-ID header (or ?after= query parameter); the
// server replays everything newer from its per-job ring.

// JobEvent types. A stream always terminates with one result event.
const (
	// JobEventState reports a lifecycle transition (queued, running,
	// back to queued on a retry).
	JobEventState = "state"
	// JobEventProgress is a throttled progress sample.
	JobEventProgress = "progress"
	// JobEventLease reports lease traffic on a distributed job.
	JobEventLease = "lease"
	// JobEventResult is the terminal frame: the job completed (Result
	// set) or failed (Error set). The stream closes after it.
	JobEventResult = "result"
)

// JobEvent is one frame of a job's event stream.
type JobEvent struct {
	// Seq is the event's position in the job's stream, strictly
	// increasing from 1. Feed it back as Last-Event-ID to resume.
	Seq int64 `json:"seq"`
	// Type is one of the JobEvent* constants.
	Type string `json:"type"`
	// JobID names the job.
	JobID string `json:"job_id"`
	// TraceID is the job's campaign trace ID.
	TraceID string `json:"trace_id,omitempty"`
	// State is the lifecycle state after a state transition.
	State JobState `json:"state,omitempty"`
	// Progress accompanies progress events.
	Progress *Progress `json:"progress,omitempty"`
	// Result accompanies the terminal event of a completed job. It is
	// the same payload GET /v1/jobs/{id}/result serves.
	Result *JobResult `json:"result,omitempty"`
	// Error accompanies the terminal event of a failed job.
	Error string `json:"error,omitempty"`
	// Lease accompanies lease events.
	Lease *LeaseEvent `json:"lease,omitempty"`
}

// LeaseEvent is the lease-traffic payload of a lease-typed JobEvent.
type LeaseEvent struct {
	// Event is the lease transition: granted, completed, or a requeue
	// reason (lease_expired, worker_failure, bad_result, or
	// unit_exhausted when the unit's attempt budget ran out).
	Event string `json:"event"`
	// LeaseID names the lease, when one was involved.
	LeaseID string `json:"lease_id,omitempty"`
	// Unit is the work-unit index within the job.
	Unit int `json:"unit"`
	// WorkerID names the worker holding or losing the lease.
	WorkerID string `json:"worker_id,omitempty"`
	// Attempt is the unit's attempt number at the time of the event.
	Attempt int `json:"attempt,omitempty"`
	// Reason carries failure detail on requeue events.
	Reason string `json:"reason,omitempty"`
}
