package api

import (
	"errors"
	"fmt"
	"net/http"
)

// Error codes. Codes are stable contract; messages are for humans and
// may change freely.
const (
	CodeBadRequest     = "bad_request"      // malformed body or invalid spec (400)
	CodeUnknownKind    = "unknown_kind"     // unrecognized JobKind/VectorKind (422)
	CodeUnknownDesign  = "unknown_design"   // design ID the registry cannot resolve (422)
	CodeSpecMismatch   = "spec_mismatch"    // sub-spec on a kind it does not belong to (422)
	CodeNotFound       = "not_found"        // unknown job, lease or route (404)
	CodeUnavailable    = "unavailable"      // draining, queue full, shed load (503)
	CodeTimeout        = "timeout"          // request handler deadline expired (503)
	CodeJobNotFinished = "job_not_finished" // result requested before a terminal state (409)
	CodeJobFailed      = "job_failed"       // result of a terminally failed job (200)
	CodeLeaseGone      = "lease_gone"       // lease expired, reassigned or job withdrawn (409)
	CodeBadResult      = "bad_result"       // result upload failed validation (422)
	CodeInternal       = "internal"         // unexpected server-side failure (500)
)

// Error is the uniform error envelope every /v1 route answers failures
// with: a stable machine-readable code, a human-readable message, and a
// retryable flag telling the client whether the same request can
// succeed later (back-pressure, a job still running, a lost lease)
// or never will (validation failures, unknown IDs).
//
// Legacy mirrors Message under the pre-/v1 "error" key so clients of
// the deprecated unversioned routes keep parsing; it carries no extra
// information and will disappear with those routes.
type Error struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	Legacy    string `json:"error,omitempty"`
	// Detail carries structured context for some codes (e.g. the live
	// state and progress on job_not_finished).
	Detail map[string]any `json:"detail,omitempty"`
}

// Error implements the error interface, so a decoded envelope can flow
// through ordinary error paths (and errors.As can recover it).
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s (retryable=%v)", e.Code, e.Message, e.Retryable)
}

// Errf builds an envelope with a formatted message. The Legacy mirror
// is filled in automatically.
func Errf(code string, retryable bool, format string, args ...any) *Error {
	msg := fmt.Sprintf(format, args...)
	return &Error{Code: code, Message: msg, Retryable: retryable, Legacy: msg}
}

// HTTPStatus maps an envelope code to its canonical HTTP status.
func HTTPStatus(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknownKind, CodeUnknownDesign, CodeSpecMismatch, CodeBadResult:
		return http.StatusUnprocessableEntity
	case CodeNotFound:
		return http.StatusNotFound
	case CodeUnavailable, CodeTimeout:
		return http.StatusServiceUnavailable
	case CodeJobNotFinished, CodeLeaseGone:
		return http.StatusConflict
	case CodeJobFailed:
		return http.StatusOK
	default:
		return http.StatusInternalServerError
	}
}

// IsRetryable reports whether err is (or wraps) an envelope marked
// retryable — the client-side test for "back off and try again".
func IsRetryable(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Retryable
}

// AsError unwraps err into an *Error envelope (errors.As sugar so
// callers can switch on Code without importing errors).
func AsError(err error, target **Error) bool {
	return errors.As(err, target)
}
