// Package api is the versioned wire contract of the sbstd campaign
// service: every JSON body that crosses the HTTP boundary — job
// submission and status, lease acquisition, heartbeats, result uploads,
// the error envelope and the capabilities document — is defined here
// and nowhere else. The server (internal/engine), the client package
// (internal/client) and the worker loop (internal/worker) all import
// these types, so the coordinator and a fleet of remote workers agree
// on the schema by construction.
//
// Routes are served under the Prefix ("/v1"). The legacy unversioned
// aliases from the pre-coordinator sbstd (deprecated since the /v1
// rollout) have been removed: they answer 404 with a Link header
// pointing at the /v1 successor route. GET /v1/meta
// serves a Meta document describing the running service's version and
// capabilities, so a worker can refuse to join a coordinator it does
// not understand.
//
// Two stringly-typed fields from the original engine API are now
// validated enums: JobKind (the campaign a job runs) and VectorKind
// (where its stimulus comes from). Validate rejects unknown values with
// an error wrapping ErrUnknownKind, which the server maps to HTTP 422 —
// a bad kind fails at submission, never mid-campaign.
package api

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/isa"
)

// Version is the wire-contract generation this package defines, and
// Prefix is the corresponding route prefix.
const (
	Version = "v1"
	Prefix  = "/v1"
)

// ErrUnknownKind marks validation failures caused by an unrecognized
// JobKind or VectorKind. The server answers these with 422
// (unprocessable) instead of the generic 400, so clients can tell a
// schema mismatch from a malformed body.
var ErrUnknownKind = errors.New("api: unknown kind")

// ErrUnknownDesign marks validation failures caused by a design ID the
// server's registry cannot resolve. The api package does not know the
// registry (the wire contract stays free of netlist code), so JobSpec
// validation cannot raise it; the queue checks the design at submission
// and wraps this sentinel, which the server maps to 422 with code
// unknown_design.
var ErrUnknownDesign = errors.New("api: unknown design")

// ErrSpecMismatch marks kind-safety violations: a JobSpec carrying a
// sub-spec (matrix, online, ga) that does not belong to its kind, or
// missing the one its kind requires. The server maps it to 422 with
// code spec_mismatch. The same Validate call enforces it at submission,
// journal replay and checkpoint load, so a mismatched spec can never
// reach an executor by any path.
var ErrSpecMismatch = errors.New("api: spec does not match job kind")

// JobKind selects the campaign a job runs.
type JobKind string

// The campaign kinds the executor understands. They mirror the paper's
// evaluation: plain stuck-at fault simulation, the n-detect quality
// variant, the bounded sequential-ATPG baseline, and the composite
// experiment comparing a self-test program against raw BIST. The
// campaign_matrix kind fans a fault_sim campaign over N designs × M
// stimulus schemes and rolls the per-cell results into one table.
const (
	JobFaultSim       JobKind = "fault_sim"
	JobNDetect        JobKind = "n_detect"
	JobSeqATPG        JobKind = "seq_atpg"
	JobExperiment     JobKind = "experiment"
	JobCampaignMatrix JobKind = "campaign_matrix"
	// JobOnlineBurst runs the STC-style online self-test interval
	// scheduler: a characterized self-test program partitioned into
	// resumable intervals with per-interval golden MISR signatures,
	// executed under a cycle budget with a restart-vs-continue policy,
	// optionally preceded by a comparator self-check that injects a
	// known fault and asserts the signature comparator catches it.
	JobOnlineBurst JobKind = "online_burst"
	// JobGaSearch runs a deterministic, seeded genetic search over
	// self-test program skeletons and LFSR seed/polynomial/reseed
	// configurations, with fault coverage per test cycle as fitness.
	// Each individual's fitness evaluation is an ordinary fault-sim
	// campaign on the evolved phenotype, so on a coordinator every
	// generation fans out across the worker fleet as lease-pool work
	// units.
	JobGaSearch JobKind = "ga_search"
)

// JobKinds lists every valid kind, in a fixed order (meta document,
// diagnostics).
func JobKinds() []JobKind {
	return []JobKind{JobFaultSim, JobNDetect, JobSeqATPG, JobExperiment, JobCampaignMatrix, JobOnlineBurst, JobGaSearch}
}

// Valid reports whether k is a known campaign kind.
func (k JobKind) Valid() bool {
	switch k {
	case JobFaultSim, JobNDetect, JobSeqATPG, JobExperiment, JobCampaignMatrix, JobOnlineBurst, JobGaSearch:
		return true
	}
	return false
}

// VectorKind selects where a job's stimulus stream comes from.
type VectorKind string

// The stimulus sources: raw 17-bit LFSR vectors, an inline self-test
// program in assembler syntax (looped through the template
// architecture), or the metrics-driven generated program.
const (
	VecBIST     VectorKind = "bist"
	VecProgram  VectorKind = "program"
	VecSelfTest VectorKind = "selftest"
)

// VectorKinds lists every valid stimulus source, in a fixed order.
func VectorKinds() []VectorKind {
	return []VectorKind{VecBIST, VecProgram, VecSelfTest}
}

// Valid reports whether k is a known stimulus source.
func (k VectorKind) Valid() bool {
	switch k {
	case VecBIST, VecProgram, VecSelfTest:
		return true
	}
	return false
}

// VectorSource describes where a job's stimulus stream comes from.
type VectorSource struct {
	// Kind is the stimulus source (see VectorKind).
	Kind VectorKind `json:"kind"`
	// Count is the vector count for VecBIST.
	Count int `json:"count,omitempty"`
	// Seed seeds the LFSRs (vector generation for VecBIST, template
	// expansion for VecProgram/VecSelfTest).
	Seed int64 `json:"seed,omitempty"`
	// Program is the assembler source for VecProgram.
	Program string `json:"program,omitempty"`
	// Iterations is the loop count for VecProgram/VecSelfTest expansion.
	Iterations int `json:"iterations,omitempty"`
	// CTrials and OGoodRuns size the metrics engine behind VecSelfTest
	// generation; zero selects fast defaults.
	CTrials   int `json:"c_trials,omitempty"`
	OGoodRuns int `json:"o_good_runs,omitempty"`
	// Seed2 seeds the template architecture's LFSR2 (the register-field
	// XOR mask) for VecProgram/VecSelfTest expansion; zero keeps the
	// built-in seed.
	Seed2 int64 `json:"seed2,omitempty"`
	// Taps overrides LFSR1's feedback polynomial for VecProgram
	// expansion (a 16-bit tap mask; zero keeps the built-in primitive
	// polynomial). Evolved ga_search phenotypes carry their polynomial
	// gene here.
	Taps uint64 `json:"taps,omitempty"`
	// ReseedEvery, when > 0, reseeds LFSR1 every that many loop
	// iterations during VecProgram expansion, cycling through Reseeds —
	// the hybrid-BIST reseeding schedule.
	ReseedEvery int      `json:"reseed_every,omitempty"`
	Reseeds     []uint64 `json:"reseeds,omitempty"`
}

// MatrixSpec configures a campaign_matrix job: the cross product of
// Designs × Schemes, each cell an independent fault-simulation
// campaign on that design with that stimulus.
type MatrixSpec struct {
	// Designs lists the design IDs to sweep (registry grammar: "dsp",
	// "fam/<params>", "bench/<name>").
	Designs []string `json:"designs"`
	// Schemes lists the stimulus sources to apply to every design.
	Schemes []VectorSource `json:"schemes"`
}

// MatrixCell is one completed cell of a campaign_matrix job.
type MatrixCell struct {
	Design string     `json:"design"`
	Scheme VectorKind `json:"scheme"`
	// SchemeIndex disambiguates two schemes of the same kind (e.g. two
	// bist entries with different counts).
	SchemeIndex int     `json:"scheme_index"`
	Faults      int     `json:"faults"`
	Detected    int     `json:"detected"`
	Cycles      int     `json:"cycles"`
	Coverage    float64 `json:"coverage"`
}

// JobSpec is the typed request submitted to the queue (the
// POST /v1/jobs body).
type JobSpec struct {
	Kind JobKind `json:"kind"`
	// Design selects the circuit the campaign runs against (registry
	// grammar: "dsp", "fam/<params>", "bench/<name>"). Empty means the
	// default DSP core, so existing clients are unaffected. Unknown IDs
	// fail submission with 422 unknown_design.
	Design string `json:"design,omitempty"`
	// Vectors is the stimulus source for fault_sim, n_detect and
	// experiment jobs; seq_atpg generates its own tests and
	// campaign_matrix takes its schemes from Matrix.
	Vectors VectorSource `json:"vectors,omitempty"`
	// Matrix configures campaign_matrix jobs.
	Matrix *MatrixSpec `json:"matrix,omitempty"`
	// Online configures online_burst jobs; nil selects defaults.
	Online *OnlineSpec `json:"online,omitempty"`
	// Ga configures ga_search jobs; nil selects defaults.
	Ga *GaSpec `json:"ga,omitempty"`
	// Workers is the fault-simulation shard count (0 = all cores,
	// 1 = exact serial path). On a coordinator this bounds each work
	// unit's local shard count instead.
	Workers int `json:"workers,omitempty"`
	// NDetect is the per-fault detection target for n_detect jobs
	// (default 5).
	NDetect int `json:"n_detect,omitempty"`
	// SegmentLen overrides the simulator's drop/repack segment length.
	SegmentLen int `json:"segment_len,omitempty"`
	// Frames, SampleEvery and MaxBacktracks configure seq_atpg jobs.
	Frames        int `json:"frames,omitempty"`
	SampleEvery   int `json:"sample_every,omitempty"`
	MaxBacktracks int `json:"max_backtracks,omitempty"`
	// DeadlineSec bounds the job's wall time: the executor's context is
	// cancelled that many seconds after the job starts and the job fails
	// with a deadline error (no retry — a rerun would only time out
	// again). Zero inherits the queue's JobTimeout, if any.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// TraceID correlates every process touching this job: minted by the
	// queue at submission when empty, echoed in job snapshots and SSE
	// events, and carried to workers inside lease work units so their
	// NDJSON traces share the coordinator's ID (cmd/sbst-trace merges
	// them). Clients may pre-mint their own.
	TraceID string `json:"trace_id,omitempty"`
	// SubmitID is an optional client-supplied idempotency key. Two
	// submissions carrying the same SubmitID enqueue one job: the second
	// is answered with the first job's snapshot. This is what makes
	// "retry the submit until it sticks" safe across coordinator
	// restarts and load-shed 503s.
	SubmitID string `json:"submit_id,omitempty"`
}

// OnlineSpec configures an online_burst job: the STC-style interval
// schedule for in-field periodic self-test.
type OnlineSpec struct {
	// Intervals is the number of resumable intervals the self-test
	// program is partitioned into (the STC interval count; default 8).
	Intervals int `json:"intervals,omitempty"`
	// Iterations is the self-test loop expansion count (default 4).
	Iterations int `json:"iterations,omitempty"`
	// MISRWidth is the signature register width in bits (default 24).
	MISRWidth int `json:"misr_width,omitempty"`
	// TimeoutCycles is the per-interval timeout preload: an interval
	// that needs more cycles than this is aborted as hung (0 = no
	// timeout).
	TimeoutCycles int `json:"timeout_cycles,omitempty"`
	// Policy picks what happens after a preemption or timeout:
	// "continue" resumes at the interrupted interval, "restart" goes
	// back to interval 0 (default "continue").
	Policy string `json:"policy,omitempty"`
	// BudgetCycles bounds each scheduling slot: the scheduler runs whole
	// intervals until the slot budget cannot fit the next one, yields
	// (preemption), and resumes in the next slot. 0 runs the whole
	// program in one slot.
	BudgetCycles int `json:"budget_cycles,omitempty"`
	// SelfCheck enables the comparator self-check: before the clean
	// burst, a deliberately faulted run (deterministic, seeded component
	// and bit selection) must trip the signature comparator. A fault the
	// comparator misses fails the job.
	SelfCheck bool `json:"self_check,omitempty"`
	// FaultSeed seeds the self-check's fault selection (default 1).
	FaultSeed int64 `json:"fault_seed,omitempty"`
}

// OnlineIntervalInfo describes one characterized interval.
type OnlineIntervalInfo struct {
	Index  int    `json:"index"`
	Cycles int    `json:"cycles"`
	Golden string `json:"golden"` // hex MISR signature
}

// OnlineSelfCheck reports the deliberate-fault comparator check.
type OnlineSelfCheck struct {
	// Component and Bit identify the injected stuck-at style fault.
	Component string `json:"component"`
	Bit       int    `json:"bit"`
	// Caught is true when at least one interval signature mismatched
	// under the injected fault — the comparator works.
	Caught bool `json:"caught"`
	// MismatchedIntervals lists the interval indices that flagged it.
	MismatchedIntervals []int `json:"mismatched_intervals,omitempty"`
}

// OnlineResult is the online_burst result: the interval schedule's
// outcome counts plus the optional self-check report.
type OnlineResult struct {
	Intervals   int                  `json:"intervals"`
	Passed      int                  `json:"passed"`
	Mismatches  int                  `json:"mismatches"`
	Timeouts    int                  `json:"timeouts"`
	Preemptions int                  `json:"preemptions"`
	Slots       int                  `json:"slots"`
	BurstCycles int                  `json:"burst_cycles"`
	Schedule    []OnlineIntervalInfo `json:"schedule,omitempty"`
	SelfCheck   *OnlineSelfCheck     `json:"self_check,omitempty"`
}

// GaSpec configures a ga_search job: a deterministic, seeded genetic
// search over self-test program skeletons (instruction-slot choices
// over the generator vocabulary) plus LFSR seed, feedback polynomial
// and reseed schedule, with fault coverage per test cycle as fitness.
// The same seed always reproduces the same search, bit for bit, for
// any worker count and across coordinator restarts.
type GaSpec struct {
	// Population is the individuals per generation (default 12, cap 256).
	Population int `json:"population,omitempty"`
	// Generations is the number of generations bred (default 6, cap 512).
	Generations int `json:"generations,omitempty"`
	// Seed seeds the search's PRNG; every random draw — initial
	// population, selection, crossover, mutation — derives from it
	// (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Slots is the evolved instruction-slot count per genome
	// (default 12, cap 64).
	Slots int `json:"slots,omitempty"`
	// Iterations is the template-loop expansion count per fitness
	// evaluation (default 150).
	Iterations int `json:"iterations,omitempty"`
	// Elite is the number of top individuals copied unchanged into the
	// next generation (default 2).
	Elite int `json:"elite,omitempty"`
	// Tournament is the selection tournament size (default 3).
	Tournament int `json:"tournament,omitempty"`
	// MutationPct is the per-gene mutation probability in percent
	// (default 15).
	MutationPct int `json:"mutation_pct,omitempty"`
}

// GaGeneration is one completed generation's fitness summary.
type GaGeneration struct {
	Gen          int     `json:"gen"`
	BestFitness  float64 `json:"best_fitness"`
	MeanFitness  float64 `json:"mean_fitness"`
	BestCoverage float64 `json:"best_coverage"`
	BestCycles   int     `json:"best_cycles"`
}

// GaResult is the ga_search result: the fitness trajectory, the winning
// genome and its phenotype, and the evaluation economics.
type GaResult struct {
	Population int `json:"population"`
	// Generations is the per-generation trajectory, one entry per
	// generation in order.
	Generations []GaGeneration `json:"generations"`
	// BestGenome is the winning genome's canonical text encoding
	// (slots + LFSR seed/polynomial/reseed genes).
	BestGenome string `json:"best_genome"`
	// Best is the winning phenotype as a ready-to-submit stimulus
	// source: POST it back as a fault_sim job to reproduce the reported
	// coverage exactly.
	Best         VectorSource `json:"best"`
	BestFitness  float64      `json:"best_fitness"`
	BestCoverage float64      `json:"best_coverage"`
	BestCycles   int          `json:"best_cycles"`
	// Evaluations counts the fault simulations actually run; CacheHits
	// counts individuals whose phenotype repeated an already-evaluated
	// one and cost nothing.
	Evaluations int `json:"evaluations"`
	CacheHits   int `json:"cache_hits,omitempty"`
	// ResumedFrom is the number of generations fast-forwarded from the
	// journal after a coordinator restart (0 for an uninterrupted run).
	ResumedFrom int `json:"resumed_from,omitempty"`
}

// Validate rejects specs the executor could not run, so the server can
// fail submission instead of failing the job later. Unrecognized
// JobKind or VectorKind values wrap ErrUnknownKind (HTTP 422);
// kind-safety violations — a sub-spec on a kind it does not belong to —
// wrap ErrSpecMismatch (HTTP 422); every other violation is a plain
// validation error (HTTP 400).
//
// This is the one shared validator: the server calls it at submission,
// and the engine calls it again when replaying journaled submits and
// when adopting checkpointed jobs, so no path smuggles a mismatched
// spec past it.
func (s *JobSpec) Validate() error {
	if !s.Kind.Valid() {
		return fmt.Errorf("%w: job kind %q (want one of %v)", ErrUnknownKind, s.Kind, JobKinds())
	}
	// Kind-safety: each sub-spec belongs to exactly one kind; carrying
	// it on any other kind is a mismatch, not dead weight to ignore.
	for _, sub := range []struct {
		name string
		set  bool
		kind JobKind
	}{
		{"matrix", s.Matrix != nil, JobCampaignMatrix},
		{"online", s.Online != nil, JobOnlineBurst},
		{"ga", s.Ga != nil, JobGaSearch},
	} {
		if sub.set && s.Kind != sub.kind {
			return fmt.Errorf("%w: %s job carries the %q sub-spec (only %s jobs may)",
				ErrSpecMismatch, s.Kind, sub.name, sub.kind)
		}
	}
	switch s.Kind {
	case JobFaultSim, JobNDetect, JobExperiment:
		if err := validateVectorSource(s.Vectors, string(s.Kind)+" job"); err != nil {
			return err
		}
	case JobSeqATPG:
		if s.Frames < 0 || s.SampleEvery < 0 || s.MaxBacktracks < 0 {
			return fmt.Errorf("api: negative seq_atpg bounds")
		}
	case JobCampaignMatrix:
		if s.Matrix == nil || len(s.Matrix.Designs) == 0 || len(s.Matrix.Schemes) == 0 {
			return fmt.Errorf("api: campaign_matrix job needs matrix with designs and schemes")
		}
		seen := make(map[string]bool, len(s.Matrix.Designs))
		for _, d := range s.Matrix.Designs {
			if seen[d] {
				return fmt.Errorf("api: campaign_matrix lists design %q twice", d)
			}
			seen[d] = true
		}
		for i, v := range s.Matrix.Schemes {
			if err := validateVectorSource(v, fmt.Sprintf("campaign_matrix scheme %d", i)); err != nil {
				return err
			}
		}
	case JobOnlineBurst:
		// The interval scheduler drives the behavioral DSP core with a
		// self-test program: the stimulus must be a program source
		// (inline or generated). An empty Vectors defaults to the
		// generated self-test program.
		switch s.Vectors.Kind {
		case "", VecSelfTest:
		case VecProgram:
			if err := validateVectorSource(s.Vectors, "online_burst job"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: online_burst vectors %q (want program or selftest)", ErrUnknownKind, s.Vectors.Kind)
		}
		if o := s.Online; o != nil {
			if o.Intervals < 0 || o.Iterations < 0 || o.MISRWidth < 0 ||
				o.TimeoutCycles < 0 || o.BudgetCycles < 0 {
				return fmt.Errorf("api: negative online_burst option")
			}
			if o.MISRWidth > 64 {
				return fmt.Errorf("api: online_burst misr_width %d > 64", o.MISRWidth)
			}
			switch o.Policy {
			case "", "continue", "restart":
			default:
				return fmt.Errorf("api: online_burst policy %q (want continue or restart)", o.Policy)
			}
		}
	case JobGaSearch:
		// The GA evolves its own stimulus; a vectors block has nothing
		// to configure and would silently be ignored — reject it.
		if !s.Vectors.isZero() {
			return fmt.Errorf("%w: ga_search evolves its own stimulus; vectors must be empty", ErrSpecMismatch)
		}
		if g := s.Ga; g != nil {
			if g.Population < 0 || g.Generations < 0 || g.Slots < 0 || g.Iterations < 0 ||
				g.Elite < 0 || g.Tournament < 0 || g.MutationPct < 0 {
				return fmt.Errorf("api: negative ga_search option")
			}
			if g.Population > 256 {
				return fmt.Errorf("api: ga_search population %d > 256", g.Population)
			}
			if g.Generations > 512 {
				return fmt.Errorf("api: ga_search generations %d > 512", g.Generations)
			}
			if g.Slots > 64 {
				return fmt.Errorf("api: ga_search slots %d > 64", g.Slots)
			}
			if g.MutationPct > 100 {
				return fmt.Errorf("api: ga_search mutation_pct %d > 100", g.MutationPct)
			}
			if g.Population > 0 && g.Elite > g.Population {
				return fmt.Errorf("api: ga_search elite %d > population %d", g.Elite, g.Population)
			}
		}
	}
	if s.Workers < 0 || s.NDetect < 0 || s.SegmentLen < 0 || s.DeadlineSec < 0 {
		return fmt.Errorf("api: negative option")
	}
	return nil
}

// isZero reports whether the source is entirely unset (VectorSource
// holds a slice, so it cannot be compared against a zero literal).
func (v VectorSource) isZero() bool {
	return v.Kind == "" && v.Count == 0 && v.Seed == 0 && v.Program == "" &&
		v.Iterations == 0 && v.CTrials == 0 && v.OGoodRuns == 0 &&
		v.Seed2 == 0 && v.Taps == 0 && v.ReseedEvery == 0 && len(v.Reseeds) == 0
}

// validateVectorSource checks one stimulus source; what names it in
// error messages ("fault_sim job", "campaign_matrix scheme 1").
func validateVectorSource(v VectorSource, what string) error {
	switch v.Kind {
	case VecBIST:
		if v.Count <= 0 {
			return fmt.Errorf("api: %s with bist vectors needs count > 0", what)
		}
	case VecProgram:
		if v.Program == "" {
			return fmt.Errorf("api: %s with program vectors needs source", what)
		}
		if _, err := isa.Assemble(v.Program); err != nil {
			return fmt.Errorf("api: bad program: %w", err)
		}
	case VecSelfTest:
		// Generated program; all fields optional.
	default:
		return fmt.Errorf("%w: vector source %q (want one of %v)", ErrUnknownKind, v.Kind, VectorKinds())
	}
	if v.Taps>>16 != 0 {
		return fmt.Errorf("api: %s taps %#x exceeds the 16-bit LFSR1 mask", what, v.Taps)
	}
	if v.ReseedEvery < 0 {
		return fmt.Errorf("api: %s negative reseed_every", what)
	}
	if v.ReseedEvery > 0 && len(v.Reseeds) == 0 {
		return fmt.Errorf("api: %s reseed_every without reseeds", what)
	}
	if v.ReseedEvery == 0 && len(v.Reseeds) > 0 {
		return fmt.Errorf("api: %s reseeds without reseed_every", what)
	}
	return nil
}

// JobState is a job's lifecycle position.
type JobState string

// Lifecycle: queued → running → completed | failed. A forced drain or a
// recoverable worker panic moves a running job back to queued so a
// checkpoint restore re-runs it. The full lifecycle, including how each
// state answers GET /v1/jobs/{id}/result, is documented in docs/API.md.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
)

// Progress is a live campaign snapshot, updated by the executor at
// segment boundaries (fault simulation), per targeted fault (ATPG), or
// per worker heartbeat (distributed campaigns).
type Progress struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Detected  int     `json:"detected,omitempty"`
	Remaining int     `json:"remaining,omitempty"`
	Coverage  float64 `json:"coverage,omitempty"`
}

// JobResult is a completed campaign's headline numbers.
type JobResult struct {
	Faults   int     `json:"faults,omitempty"`
	Detected int     `json:"detected,omitempty"`
	Cycles   int     `json:"cycles,omitempty"`
	Coverage float64 `json:"coverage"`
	// NDetect results.
	NDetect         int     `json:"n_detect,omitempty"`
	NDetectCoverage float64 `json:"n_detect_coverage,omitempty"`
	// Sequential-ATPG results.
	TestsFound int `json:"tests_found,omitempty"`
	Untestable int `json:"untestable,omitempty"`
	Aborted    int `json:"aborted,omitempty"`
	// Sub holds named sub-campaign results for experiment jobs.
	Sub map[string]*JobResult `json:"sub,omitempty"`
	// Matrix holds the per-cell table for campaign_matrix jobs, in
	// designs-major, schemes-minor order. The headline Faults/Detected/
	// Cycles fields sum over the cells; Coverage is the summed ratio.
	Matrix []MatrixCell `json:"matrix,omitempty"`
	// Online holds the interval-schedule outcome for online_burst jobs.
	Online *OnlineResult `json:"online,omitempty"`
	// Ga holds the search trajectory and winner for ga_search jobs; the
	// headline Faults/Detected/Cycles/Coverage fields report the winning
	// individual's campaign.
	Ga *GaResult `json:"ga,omitempty"`
	// Seconds is the job's wall time.
	Seconds float64 `json:"seconds,omitempty"`
}

// DistState is the distribution snapshot of a coordinator job, recorded
// in checkpoints (schema v3) so a post-mortem can see how far the fleet
// had carried a campaign: how many work units the fault list was split
// into, which were already merged, and each unit's spent attempt count.
// Unit results themselves are not persisted — a restored job re-plans
// its units and the fleet re-runs them (deterministically, so the
// re-run merges to the identical result).
type DistState struct {
	Units     int   `json:"units"`
	Completed []int `json:"completed,omitempty"`
	Attempts  []int `json:"attempts,omitempty"`
}

// Job is one queue entry as served by GET /v1/jobs/{id}.
type Job struct {
	ID       string     `json:"id"`
	Spec     JobSpec    `json:"spec"`
	State    JobState   `json:"state"`
	Attempts int        `json:"attempts,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Progress Progress   `json:"progress"`
	Result   *JobResult `json:"result,omitempty"`
	// Dist is the distribution snapshot for coordinator jobs
	// (checkpoint v3); nil for locally executed jobs.
	Dist *DistState `json:"dist,omitempty"`
}

// JobList is the GET /v1/jobs response: one page of jobs in stable
// submission order. The listing paginates with a cursor: pass
// ?limit=N&after=<job id> to resume, plus optional ?kind= and ?state=
// filters.
type JobList struct {
	Jobs []Job `json:"jobs"`
	// NextAfter is the cursor for the next page: the last job ID on
	// this page, present only when more jobs match beyond it. Pass it
	// back as ?after= to continue.
	NextAfter string `json:"next_after,omitempty"`
}

// Health is the GET /v1/healthz response: liveness plus queue occupancy
// by state, and (coordinator mode) lease-pool occupancy.
type Health struct {
	Status string           `json:"status"`
	Jobs   map[JobState]int `json:"jobs"`
	Leases *LeaseCounts     `json:"leases,omitempty"`
}

// Meta is the GET /v1/meta document: the service's identity, the wire
// versions it speaks, and the capabilities behind them. A worker checks
// Versions before joining a coordinator.
type Meta struct {
	Service     string       `json:"service"`
	APIVersion  string       `json:"api_version"`
	Versions    []string     `json:"versions"`
	JobKinds    []JobKind    `json:"job_kinds"`
	VectorKinds []VectorKind `json:"vector_kinds"`
	// Capabilities names the optional surfaces this instance serves:
	// "jobs", "metrics", "designs" and "online" always; "leases" when
	// running as a coordinator; "events" when the SSE job-event stream
	// is wired; "journal" when the write-ahead job journal is enabled
	// (submits survive kill -9).
	Capabilities []string `json:"capabilities"`
	// Designs lists the bundled design IDs this instance resolves (the
	// DSP core and every embedded .bench netlist). Family designs are a
	// parameter space and are not enumerated here.
	Designs []string `json:"designs,omitempty"`
	// Obs is a point-in-time health snapshot of the serving process.
	Obs *MetaObs `json:"obs,omitempty"`
}

// MetaObs is the observability summary embedded in GET /v1/meta — the
// three numbers a fleet dashboard wants before scraping full metrics.
type MetaObs struct {
	// GateEvals is the process-lifetime faultsim.gate_evals counter.
	GateEvals int64 `json:"gate_evals"`
	// VectorsPerSec is the most recent simulation throughput.
	VectorsPerSec float64 `json:"vectors_per_sec"`
	// HeartbeatP99Millis is the 99th-percentile gap between worker
	// heartbeats observed by this coordinator's lease pool (0 when no
	// heartbeats have been seen).
	HeartbeatP99Millis float64 `json:"heartbeat_p99_ms"`
}
