package api

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The lease protocol. A coordinator splits each fault-simulation job's
// collapsed fault list into contiguous work units; workers pull units
// with time-bounded leases:
//
//	POST /v1/leases                  LeaseRequest → Lease (200) or no work (204)
//	POST /v1/leases/{id}/heartbeat   Heartbeat    → HeartbeatAck; extends the TTL
//	POST /v1/leases/{id}/result      UnitResult   → 200; unit merged
//	POST /v1/leases/{id}/fail        LeaseFailure → 200; unit requeued or job failed
//
// A lease that outlives its TTL without a heartbeat is expired by the
// coordinator: the unit goes back to the pending pool (with backoff and
// an attempt charge) and any late call on the old lease answers 409
// lease_gone. Fault independence makes per-fault results invariant
// under partitioning, so the merged campaign is bit-identical to a
// single-process run no matter how units are distributed, retried or
// reassigned.

// LeaseRequest asks the coordinator for one work unit.
type LeaseRequest struct {
	// WorkerID identifies the requesting worker in logs, lease records
	// and checkpoints. Required.
	WorkerID string `json:"worker_id"`
}

// WorkUnit is the payload of a lease: everything a worker needs to
// reproduce the coordinator's shard-local simulation exactly. The
// worker builds the same gate-level core, collapses the same fault
// list, simulates Faults[FaultLo:FaultHi] against the spec's stimulus,
// and uploads the per-fault detection bitmap.
type WorkUnit struct {
	JobID string `json:"job_id"`
	// Unit is this unit's index in [0, Units).
	Unit  int `json:"unit"`
	Units int `json:"units"`
	// Spec is the owning job's spec (stimulus source, n-detect target,
	// segment length). Workers must not re-shard across units: the unit
	// boundaries below are authoritative.
	Spec JobSpec `json:"spec"`
	// FaultLo/FaultHi bound this unit's slice of the collapsed fault
	// list, and TotalFaults pins the list length the coordinator saw —
	// a worker whose core build disagrees must refuse the unit.
	FaultLo     int `json:"fault_lo"`
	FaultHi     int `json:"fault_hi"`
	TotalFaults int `json:"total_faults"`
	// ShadowSample/ShadowSeed forward the coordinator's shadow
	// cross-checking policy onto the worker's kernel (see
	// docs/RESILIENCE.md).
	ShadowSample float64 `json:"shadow_sample,omitempty"`
	ShadowSeed   int64   `json:"shadow_seed,omitempty"`
}

// Lease is a granted work unit with its keep-alive contract.
type Lease struct {
	ID       string   `json:"id"`
	WorkerID string   `json:"worker_id"`
	Unit     WorkUnit `json:"unit"`
	// TTLMillis is the lease lifetime; a heartbeat resets the clock.
	TTLMillis int64 `json:"ttl_ms"`
	// HeartbeatMillis is the recommended heartbeat interval (a fraction
	// of the TTL).
	HeartbeatMillis int64 `json:"heartbeat_ms"`
	// Attempt counts prior tries of this unit (0 = first grant).
	Attempt int `json:"attempt"`
}

// Heartbeat keeps a lease alive and reports unit-local progress, which
// the coordinator folds into the job's Progress snapshot (and which
// feeds the queue's stuck-job watchdog).
type Heartbeat struct {
	WorkerID string   `json:"worker_id"`
	Progress Progress `json:"progress"`
}

// HeartbeatAck confirms the extension.
type HeartbeatAck struct {
	TTLMillis int64 `json:"ttl_ms"`
}

// UnitResult uploads a completed unit's detection bitmaps. DetectedAt
// (and Detections for n-detect campaigns) are packed little-endian
// int32 arrays, base64-encoded — see PackInt32 — covering exactly
// [FaultLo, FaultHi). Checksum guards the payload end to end: the
// coordinator recomputes it before merging and rejects mismatches with
// 422 bad_result, so a corrupted upload costs one retry instead of a
// silently wrong campaign.
type UnitResult struct {
	WorkerID string `json:"worker_id"`
	// DetectedAt is the packed per-fault first-detection cycle array
	// (-1 = undetected).
	DetectedAt string `json:"detected_at"`
	// Detections is the packed per-fault detection-count array; empty
	// unless the campaign runs with NDetect > 1.
	Detections string `json:"detections,omitempty"`
	// Cycles is the number of vectors the unit applied (the full
	// sequence length for a completed unit).
	Cycles int `json:"cycles"`
	// Checksum is crc32c over the decoded DetectedAt bytes followed by
	// the decoded Detections bytes.
	Checksum uint32 `json:"checksum"`
	// Seconds is the unit's wall time on the worker (diagnostics).
	Seconds float64 `json:"seconds,omitempty"`
}

// LeaseFailure reports a unit the worker could not finish.
type LeaseFailure struct {
	WorkerID string `json:"worker_id"`
	Reason   string `json:"reason"`
	// Retryable asks the coordinator to requeue the unit (environment
	// trouble) rather than charging it as a hard failure. The unit's
	// attempt budget still applies either way.
	Retryable bool `json:"retryable"`
}

// LeaseCounts is lease-pool occupancy, served inside Health.
type LeaseCounts struct {
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PackInt32 encodes an int32 array as base64(little-endian), the
// detection-bitmap wire format. It keeps a 9.3k-fault unit's upload at
// ~4 bytes per fault before base64 instead of JSON's per-number cost.
func PackInt32(v []int32) string {
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(x))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// UnpackInt32 decodes PackInt32's output.
func UnpackInt32(s string) ([]int32, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("api: bad packed int32 array: %w", err)
	}
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("api: packed int32 array has %d bytes, not a multiple of 4", len(buf))
	}
	v := make([]int32, len(buf)/4)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return v, nil
}

// ChecksumInt32 is the crc32c the UnitResult.Checksum field carries:
// computed over the little-endian bytes of detectedAt, then detections.
func ChecksumInt32(detectedAt, detections []int32) uint32 {
	h := crc32.New(castagnoli)
	var word [4]byte
	for _, x := range detectedAt {
		binary.LittleEndian.PutUint32(word[:], uint32(x))
		h.Write(word[:])
	}
	for _, x := range detections {
		binary.LittleEndian.PutUint32(word[:], uint32(x))
		h.Write(word[:])
	}
	return h.Sum32()
}

// NewUnitResult packs a unit's detection arrays into the wire form,
// checksum included.
func NewUnitResult(workerID string, detectedAt, detections []int32, cycles int, seconds float64) *UnitResult {
	r := &UnitResult{
		WorkerID:   workerID,
		DetectedAt: PackInt32(detectedAt),
		Cycles:     cycles,
		Checksum:   ChecksumInt32(detectedAt, detections),
		Seconds:    seconds,
	}
	if detections != nil {
		r.Detections = PackInt32(detections)
	}
	return r
}

// Unpack decodes and checksum-verifies the result's bitmaps, returning
// the per-fault arrays.
func (r *UnitResult) Unpack() (detectedAt, detections []int32, err error) {
	detectedAt, err = UnpackInt32(r.DetectedAt)
	if err != nil {
		return nil, nil, err
	}
	if r.Detections != "" {
		detections, err = UnpackInt32(r.Detections)
		if err != nil {
			return nil, nil, err
		}
	}
	if got := ChecksumInt32(detectedAt, detections); got != r.Checksum {
		return nil, nil, fmt.Errorf("api: unit result checksum mismatch: computed %08x, upload says %08x", got, r.Checksum)
	}
	return detectedAt, detections, nil
}
