package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// wireExamples builds one fully populated instance of every /v1
// request and response type, with pinned values, in a fixed order. The
// golden file renders each under its type name, so any field rename,
// retag or type change shows up as a diff — the same schema-pinning
// idea as the checkpoint golden.
func wireExamples() []struct {
	Name string
	Val  any
} {
	created := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	started := created.Add(time.Second)
	finished := created.Add(3 * time.Second)
	spec := JobSpec{
		Kind:        JobNDetect,
		Vectors:     VectorSource{Kind: VecBIST, Count: 4096, Seed: 7},
		Workers:     4,
		NDetect:     5,
		SegmentLen:  128,
		DeadlineSec: 30,
		TraceID:     "9f3a1c2b4d5e6f70",
	}
	unit := WorkUnit{
		JobID: "job-0001", Unit: 1, Units: 4, Spec: spec,
		FaultLo: 2330, FaultHi: 4660, TotalFaults: 9320,
		ShadowSample: 0.005, ShadowSeed: 1,
	}
	return []struct {
		Name string
		Val  any
	}{
		{"JobSpec", spec},
		{"JobSpecDesign", JobSpec{
			Kind:    JobFaultSim,
			Design:  "bench/c432",
			Vectors: VectorSource{Kind: VecBIST, Count: 1024, Seed: 3},
		}},
		{"JobSpecMatrix", JobSpec{
			Kind: JobCampaignMatrix,
			Matrix: &MatrixSpec{
				Designs: []string{"dsp", "bench/s27", "fam/w8r4s1l1p2"},
				Schemes: []VectorSource{
					{Kind: VecBIST, Count: 512, Seed: 1},
					{Kind: VecSelfTest, Iterations: 2},
				},
			},
		}},
		{"JobSpecOnline", JobSpec{
			Kind:     JobOnlineBurst,
			SubmitID: "client-a/burst-42",
			Online: &OnlineSpec{
				Intervals: 8, Iterations: 4, MISRWidth: 24,
				TimeoutCycles: 4096, Policy: "continue", BudgetCycles: 512,
				SelfCheck: true, FaultSeed: 7,
			},
		}},
		{"JobSpecGa", JobSpec{
			Kind:     JobGaSearch,
			SubmitID: "client-a/ga-7",
			Ga: &GaSpec{
				Population: 16, Generations: 8, Seed: 42, Slots: 12,
				Iterations: 150, Elite: 2, Tournament: 3, MutationPct: 15,
			},
		}},
		{"Job", Job{
			ID: "job-0001", Spec: spec, State: JobRunning, Attempts: 1,
			Created: created, Started: &started,
			Progress: Progress{Done: 2048, Total: 4096, Detected: 8000, Remaining: 1320, Coverage: 0.8584},
			Dist:     &DistState{Units: 4, Completed: []int{0, 2}, Attempts: []int{1, 1, 2, 0}},
		}},
		{"JobResult", JobResult{
			Faults: 9320, Detected: 8800, Cycles: 4096, Coverage: 0.9442,
			NDetect: 5, NDetectCoverage: 0.81,
			Sub: map[string]*JobResult{
				"bist_baseline": {Faults: 9320, Detected: 8100, Cycles: 4096, Coverage: 0.8691},
			},
			Seconds: 2.5,
		}},
		{"JobResultSeqATPG", JobResult{
			Faults: 9320, Coverage: 0.62, TestsFound: 410, Untestable: 120, Aborted: 33,
		}},
		{"JobResultOnline", JobResult{
			Cycles: 2200, Coverage: 1.0,
			Online: &OnlineResult{
				Intervals: 8, Passed: 8, Slots: 3, BurstCycles: 2200,
				Schedule: []OnlineIntervalInfo{
					{Index: 0, Cycles: 300, Golden: "00beef"},
					{Index: 1, Cycles: 280, Golden: "00c0de"},
				},
				SelfCheck: &OnlineSelfCheck{
					Component: "multiplier", Bit: 9, Caught: true,
					MismatchedIntervals: []int{2, 3},
				},
			},
			Seconds: 0.8,
		}},
		{"JobResultGa", JobResult{
			Faults: 1500, Detected: 1472, Cycles: 5100, Coverage: 0.9813,
			Ga: &GaResult{
				Population: 16,
				Generations: []GaGeneration{
					{Gen: 0, BestFitness: 0.9520, MeanFitness: 0.8711, BestCoverage: 0.952, BestCycles: 5400},
					{Gen: 1, BestFitness: 0.9813, MeanFitness: 0.9102, BestCoverage: 0.9813, BestCycles: 5100},
				},
				BestGenome: "seed1=0x1a2b seed2=0x3c4 taps=0xd008 reseed=4@0x00ff,0xbeef | MPYA>3 MACB+>5",
				Best: VectorSource{
					Kind: VecProgram, Program: "LD RND,R0\nMPYA R0,R1,R3\nOUT R3\n",
					Seed: 0x1a2b, Seed2: 0x3c4, Iterations: 150,
					Taps: 0xd008, ReseedEvery: 4, Reseeds: []uint64{0x00ff, 0xbeef},
				},
				BestFitness: 0.9813, BestCoverage: 0.9813, BestCycles: 5100,
				Evaluations: 25, CacheHits: 7, ResumedFrom: 1,
			},
			Seconds: 12.5,
		}},
		{"JobResultMatrix", JobResult{
			Faults: 1200, Detected: 1100, Cycles: 1024, Coverage: 0.9167,
			Matrix: []MatrixCell{
				{Design: "dsp", Scheme: VecBIST, SchemeIndex: 0, Faults: 900, Detected: 850, Cycles: 512, Coverage: 0.9444},
				{Design: "bench/s27", Scheme: VecBIST, SchemeIndex: 0, Faults: 300, Detected: 250, Cycles: 512, Coverage: 0.8333},
			},
			Seconds: 4.0,
		}},
		{"JobList", JobList{Jobs: []Job{{
			ID: "job-0002", Spec: JobSpec{Kind: JobSeqATPG, Frames: 3, SampleEvery: 40},
			State: JobFailed, Attempts: 2, Error: "engine: job panic: simulated",
			Created: created, Started: &started, Finished: &finished,
		}}, NextAfter: "job-0002"}},
		{"Progress", Progress{Done: 100, Total: 200, Detected: 50, Remaining: 10, Coverage: 0.833}},
		{"Health", Health{
			Status: "ok",
			Jobs:   map[JobState]int{JobCompleted: 2, JobQueued: 1},
			Leases: &LeaseCounts{Pending: 2, Leased: 1, Done: 5},
		}},
		{"Meta", Meta{
			Service: "sbstd", APIVersion: Version, Versions: []string{Version},
			JobKinds: JobKinds(), VectorKinds: VectorKinds(),
			Capabilities: []string{"jobs", "metrics", "designs", "leases", "events"},
			Designs:      []string{"dsp", "bench/c432", "bench/c880", "bench/s27"},
			Obs: &MetaObs{GateEvals: 123456789, VectorsPerSec: 52000.5,
				HeartbeatP99Millis: 312.5},
		}},
		{"JobEvent", JobEvent{
			Seq: 12, Type: JobEventLease, JobID: "job-0001",
			TraceID: "9f3a1c2b4d5e6f70",
			Lease: &LeaseEvent{Event: "lease_expired", LeaseID: "lease-0003",
				Unit: 1, WorkerID: "worker-a", Attempt: 2, Reason: "ttl elapsed"},
		}},
		{"JobEventResult", JobEvent{
			Seq: 13, Type: JobEventResult, JobID: "job-0001",
			TraceID: "9f3a1c2b4d5e6f70", State: JobCompleted,
			Result: &JobResult{Faults: 9320, Detected: 8800, Cycles: 4096, Coverage: 0.9442},
		}},
		{"Error", Error{
			Code: CodeJobNotFinished, Message: "job job-0001 is running",
			Retryable: true, Legacy: "job job-0001 is running",
			Detail: map[string]any{"state": "running"},
		}},
		{"LeaseRequest", LeaseRequest{WorkerID: "worker-a"}},
		{"WorkUnit", unit},
		{"Lease", Lease{
			ID: "lease-0003", WorkerID: "worker-a", Unit: unit,
			TTLMillis: 30000, HeartbeatMillis: 10000, Attempt: 1,
		}},
		{"Heartbeat", Heartbeat{WorkerID: "worker-a",
			Progress: Progress{Done: 1024, Total: 4096, Detected: 1800, Remaining: 530}}},
		{"HeartbeatAck", HeartbeatAck{TTLMillis: 30000}},
		{"UnitResult", *NewUnitResult("worker-a",
			[]int32{-1, 0, 17, 4095}, []int32{0, 5, 5, 2}, 4096, 1.25)},
		{"LeaseFailure", LeaseFailure{WorkerID: "worker-a",
			Reason: "chaos: injected error at worker.unit", Retryable: true}},
		{"LeaseCounts", LeaseCounts{Pending: 2, Leased: 1, Done: 5}},
		{"DistState", DistState{Units: 4, Completed: []int{0, 2}, Attempts: []int{1, 1, 2, 0}}},
	}
}

// TestWireGolden pins the JSON schema of every /v1 wire type. A drift
// in any field name, tag, omitempty decision or nesting is a contract
// break and must show up here before it shows up in a mixed-version
// fleet.
func TestWireGolden(t *testing.T) {
	golden := filepath.Join("testdata", "wire.golden.json")
	doc := map[string]any{}
	for _, ex := range wireExamples() {
		doc[ex.Name] = ex.Val
	}
	// encoding/json sorts map keys, so the rendering is deterministic.
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWireRoundTrip: every example survives marshal → unmarshal into
// its own type without loss (guards asymmetric tags and unexported
// fields).
func TestWireRoundTrip(t *testing.T) {
	for _, ex := range wireExamples() {
		data, err := json.Marshal(ex.Val)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		back, err := json.Marshal(roundTrip(t, ex.Name, ex.Val, data))
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		if !bytes.Equal(data, back) {
			t.Errorf("%s lost data in a round trip:\n%s\nvs\n%s", ex.Name, data, back)
		}
	}
}

// roundTrip decodes data into a fresh value of v's dynamic type.
func roundTrip(t *testing.T, name string, v any, data []byte) any {
	t.Helper()
	switch v.(type) {
	case JobSpec:
		return decodeInto[JobSpec](t, name, data)
	case Job:
		return decodeInto[Job](t, name, data)
	case JobResult:
		return decodeInto[JobResult](t, name, data)
	case JobList:
		return decodeInto[JobList](t, name, data)
	case Progress:
		return decodeInto[Progress](t, name, data)
	case Health:
		return decodeInto[Health](t, name, data)
	case Meta:
		return decodeInto[Meta](t, name, data)
	case JobEvent:
		return decodeInto[JobEvent](t, name, data)
	case Error:
		return decodeInto[Error](t, name, data)
	case LeaseRequest:
		return decodeInto[LeaseRequest](t, name, data)
	case WorkUnit:
		return decodeInto[WorkUnit](t, name, data)
	case Lease:
		return decodeInto[Lease](t, name, data)
	case Heartbeat:
		return decodeInto[Heartbeat](t, name, data)
	case HeartbeatAck:
		return decodeInto[HeartbeatAck](t, name, data)
	case UnitResult:
		return decodeInto[UnitResult](t, name, data)
	case LeaseFailure:
		return decodeInto[LeaseFailure](t, name, data)
	case LeaseCounts:
		return decodeInto[LeaseCounts](t, name, data)
	case DistState:
		return decodeInto[DistState](t, name, data)
	default:
		t.Fatalf("%s: no round-trip case for %T", name, v)
		return nil
	}
}

func decodeInto[T any](t *testing.T, name string, data []byte) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

// TestKindValidation: the two enums reject unknown values with
// ErrUnknownKind (the 422 path) while structural problems stay plain
// errors (the 400 path).
func TestKindValidation(t *testing.T) {
	if !JobFaultSim.Valid() || !JobExperiment.Valid() || JobKind("bogus").Valid() {
		t.Fatal("JobKind.Valid misclassifies")
	}
	if !VecBIST.Valid() || VecSelfTest != "selftest" || VectorKind("csv").Valid() {
		t.Fatal("VectorKind.Valid misclassifies")
	}

	unknownKind := JobSpec{Kind: "bogus"}
	if err := unknownKind.Validate(); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown job kind: %v, want ErrUnknownKind", err)
	}
	unknownVec := JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: "csv"}}
	if err := unknownVec.Validate(); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown vector kind: %v, want ErrUnknownKind", err)
	}
	structural := JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: VecBIST}}
	if err := structural.Validate(); err == nil || errors.Is(err, ErrUnknownKind) {
		t.Fatalf("missing count: %v, want a plain validation error", err)
	}
	ok := JobSpec{Kind: JobFaultSim, Vectors: VectorSource{Kind: VecBIST, Count: 10}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if got, want := len(JobKinds()), 7; got != want {
		t.Fatalf("JobKinds() has %d entries, want %d", got, want)
	}
}

// TestSpecMismatch pins the kind-safety rules: a sub-spec on any kind
// but its own wraps ErrSpecMismatch (the 422 spec_mismatch path), the
// matching kind accepts it, and ga_search rejects a vectors block.
func TestSpecMismatch(t *testing.T) {
	for name, spec := range map[string]JobSpec{
		"matrix on fault_sim": {Kind: JobFaultSim,
			Vectors: VectorSource{Kind: VecBIST, Count: 16},
			Matrix:  &MatrixSpec{Designs: []string{"dsp"}, Schemes: []VectorSource{{Kind: VecSelfTest}}}},
		"online on campaign_matrix": {Kind: JobCampaignMatrix,
			Matrix: &MatrixSpec{Designs: []string{"dsp"}, Schemes: []VectorSource{{Kind: VecSelfTest}}},
			Online: &OnlineSpec{Intervals: 4}},
		"ga on online_burst": {Kind: JobOnlineBurst, Ga: &GaSpec{Population: 4}},
		"ga on seq_atpg":     {Kind: JobSeqATPG, Ga: &GaSpec{}},
		"vectors on ga_search": {Kind: JobGaSearch,
			Vectors: VectorSource{Kind: VecBIST, Count: 16}},
	} {
		if err := spec.Validate(); !errors.Is(err, ErrSpecMismatch) {
			t.Errorf("%s: %v, want ErrSpecMismatch", name, err)
		}
	}
	for name, spec := range map[string]JobSpec{
		"bare ga_search":   {Kind: JobGaSearch},
		"sized ga_search":  {Kind: JobGaSearch, Ga: &GaSpec{Population: 8, Generations: 3, Seed: 9}},
		"bare online":      {Kind: JobOnlineBurst},
		"online with spec": {Kind: JobOnlineBurst, Online: &OnlineSpec{Intervals: 4}},
	} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	for name, spec := range map[string]JobSpec{
		"negative population": {Kind: JobGaSearch, Ga: &GaSpec{Population: -1}},
		"population cap":      {Kind: JobGaSearch, Ga: &GaSpec{Population: 1000}},
		"elite > population":  {Kind: JobGaSearch, Ga: &GaSpec{Population: 4, Elite: 8}},
		"mutation > 100":      {Kind: JobGaSearch, Ga: &GaSpec{MutationPct: 101}},
	} {
		if err := spec.Validate(); err == nil || errors.Is(err, ErrSpecMismatch) {
			t.Errorf("%s: %v, want a plain validation error", name, err)
		}
	}
}

// TestVectorSourceLFSRGenes pins the new expansion-gene validation:
// oversized taps and inconsistent reseed schedules are rejected.
func TestVectorSourceLFSRGenes(t *testing.T) {
	base := VectorSource{Kind: VecProgram, Program: "OUT R2"}
	ok := base
	ok.Taps = 0xD008
	ok.ReseedEvery = 4
	ok.Reseeds = []uint64{0xBEEF}
	if err := (&JobSpec{Kind: JobFaultSim, Vectors: ok}).Validate(); err != nil {
		t.Fatalf("valid LFSR genes rejected: %v", err)
	}
	for name, mut := range map[string]func(*VectorSource){
		"taps over 16 bits":      func(v *VectorSource) { v.Taps = 1 << 16 },
		"reseed without seeds":   func(v *VectorSource) { v.ReseedEvery = 4 },
		"seeds without reseed":   func(v *VectorSource) { v.Reseeds = []uint64{1} },
		"negative reseed period": func(v *VectorSource) { v.ReseedEvery = -1; v.Reseeds = []uint64{1} },
	} {
		v := base
		mut(&v)
		if err := (&JobSpec{Kind: JobFaultSim, Vectors: v}).Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestMatrixValidation pins the campaign_matrix spec rules: the matrix
// block is mandatory and non-empty, duplicate designs are rejected,
// and each scheme is validated like a top-level stimulus source.
func TestMatrixValidation(t *testing.T) {
	ok := JobSpec{Kind: JobCampaignMatrix, Matrix: &MatrixSpec{
		Designs: []string{"dsp", "bench/s27"},
		Schemes: []VectorSource{{Kind: VecBIST, Count: 64}, {Kind: VecSelfTest}},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid matrix spec rejected: %v", err)
	}
	for name, spec := range map[string]JobSpec{
		"no matrix":  {Kind: JobCampaignMatrix},
		"no designs": {Kind: JobCampaignMatrix, Matrix: &MatrixSpec{Schemes: []VectorSource{{Kind: VecSelfTest}}}},
		"no schemes": {Kind: JobCampaignMatrix, Matrix: &MatrixSpec{Designs: []string{"dsp"}}},
		"dup design": {Kind: JobCampaignMatrix, Matrix: &MatrixSpec{Designs: []string{"dsp", "dsp"}, Schemes: []VectorSource{{Kind: VecSelfTest}}}},
		"bad scheme": {Kind: JobCampaignMatrix, Matrix: &MatrixSpec{Designs: []string{"dsp"}, Schemes: []VectorSource{{Kind: VecBIST}}}},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	badScheme := JobSpec{Kind: JobCampaignMatrix, Matrix: &MatrixSpec{
		Designs: []string{"dsp"}, Schemes: []VectorSource{{Kind: "csv"}},
	}}
	if err := badScheme.Validate(); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown scheme kind: %v, want ErrUnknownKind", err)
	}
}

// TestPackInt32RoundTrip covers the bitmap wire format: pack/unpack
// identity, checksum stability, and corruption detection.
func TestPackInt32RoundTrip(t *testing.T) {
	in := []int32{-1, 0, 1, 42, -7, 1 << 30}
	out, err := UnpackInt32(PackInt32(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip [%d] = %d, want %d", i, out[i], in[i])
		}
	}
	if _, err := UnpackInt32("@@@not-base64@@@"); err == nil {
		t.Fatal("bad base64 accepted")
	}
	if _, err := UnpackInt32(PackInt32(in)[:6]); err == nil {
		t.Fatal("truncated payload accepted")
	}

	res := NewUnitResult("w", in, nil, 100, 0)
	if _, _, err := res.Unpack(); err != nil {
		t.Fatalf("clean unpack: %v", err)
	}
	// Flip one bit in the payload: the checksum must catch it.
	bad := *res
	bad.DetectedAt = PackInt32([]int32{-1, 0, 1, 42, -7, (1 << 30) ^ 4})
	if _, _, err := bad.Unpack(); err == nil {
		t.Fatal("corrupted payload passed the checksum")
	}
}
