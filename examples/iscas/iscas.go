// Package iscas bundles the ISCAS-style .bench example netlists that
// ship with the design registry (internal/designs). The files are
// embedded so every binary — coordinator, worker, CLI — resolves
// "bench/<name>" design IDs to the identical netlist bytes with no
// filesystem dependency; that identity is what lets a worker fleet
// agree with its coordinator on a design's fault list by construction.
//
// s27.bench is the classic tiny sequential benchmark (4 inputs, 1
// output, 3 flip-flops). c432.bench and c880.bench are
// ISCAS85-*class* circuits — generated stand-ins with the originals'
// port shapes (36→7 and 60→26) and comparable gate counts, not the
// copyrighted originals.
package iscas

import (
	"embed"
	"io/fs"
	"sort"
	"strings"
)

//go:embed *.bench
var files embed.FS

// Names lists the bundled netlist names (without the .bench suffix),
// sorted.
func Names() []string {
	entries, _ := fs.ReadDir(files, ".")
	var out []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".bench"); ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Source returns the .bench text for a bundled name, or ok=false.
func Source(name string) (string, bool) {
	if strings.ContainsAny(name, "/\\.") {
		return "", false
	}
	data, err := files.ReadFile(name + ".bench")
	if err != nil {
		return "", false
	}
	return string(data), true
}
