// BIST comparison: the paper's Section 3.5 argument in miniature — the
// metrics-driven self-test program against raw pseudorandom BIST at
// equal vector counts, as a coverage-vs-vectors table.
//
//	go run ./examples/bist_compare
package main

import (
	"fmt"
	"log"

	"repro/internal/bist"
	"repro/internal/core"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/metrics"
)

func main() {
	gate, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		log.Fatal(err)
	}

	const vectors = 16384

	eng := metrics.NewEngine(metrics.Config{CTrials: 12000, OGoodRuns: 8, Seed: 1})
	prog, _ := core.NewGenerator(eng).Generate()
	iters := vectors/prog.Len() + 1
	sbstVecs := core.Expand(prog, core.ExpandOptions{Iterations: iters})[:vectors]

	bistVecs := bist.PseudorandomVectors(vectors, 1)

	fmt.Printf("fault-simulating SBST program (%d-instruction loop)...\n", prog.Len())
	sbst, err := fault.Simulate(gate.Netlist, sbstVecs, fault.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault-simulating raw 17-bit LFSR BIST...")
	raw, err := fault.Simulate(gate.Netlist, bistVecs, fault.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%10s %12s %12s\n", "vectors", "SBST", "raw BIST")
	for v := 512; v <= vectors; v *= 2 {
		fmt.Printf("%10d %11.2f%% %11.2f%%\n", v, 100*sbst.CoverageAt(v), 100*raw.CoverageAt(v))
	}
	fmt.Printf("\nSBST reaches %.2f%%; raw BIST %.2f%% — the LFSR \"does not take into\n",
		100*sbst.Coverage(), 100*raw.Coverage())
	fmt.Println("account the core's present state or behavior\" (paper, Section 3.5), so it")
	fmt.Println("never strings together the load → compute → out patterns deep faults need.")
}
