// MISR self-test: the complete in-field story of the paper's Figure 2 —
// the template architecture feeds the core, the core's output stream is
// compacted into a MISR signature, and a faulty core is caught by a
// signature mismatch with no per-cycle golden trace.
//
//	go run ./examples/misr_selftest
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/lfsr"
	"repro/internal/logic"
	"repro/internal/metrics"
)

func main() {
	gate, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		log.Fatal(err)
	}
	eng := metrics.NewEngine(metrics.Config{CTrials: 12000, OGoodRuns: 8, Seed: 1})
	prog, _ := core.NewGenerator(eng).Generate()
	vecs := core.Expand(prog, core.ExpandOptions{Iterations: 200})

	// Golden signature from the fault-free machine.
	golden := signature(gate, vecs, nil)
	fmt.Printf("golden MISR signature after %d cycles: %04x\n", vecs.Len(), golden)

	// Inject a handful of random stuck-at faults; every one must flip
	// the signature (the MISR aliasing probability at 16 bits is 2^-16).
	faults, _ := fault.Collapse(gate.Netlist, fault.AllFaults(gate.Netlist))
	rng := rand.New(rand.NewSource(7))
	caught, missed, silent := 0, 0, 0
	for i := 0; i < 12; i++ {
		f := faults[rng.Intn(len(faults))]
		sig := signature(gate, vecs, &f)
		switch {
		case sig != golden:
			caught++
			fmt.Printf("  fault %-14s signature %04x  -> CAUGHT\n", f, sig)
		default:
			// Either undetectable by this test length or MISR-aliased;
			// distinguish with the exact per-cycle comparison.
			res, err := fault.Simulate(gate.Netlist, vecs, fault.SimOptions{Faults: []fault.Fault{f}})
			if err != nil {
				log.Fatal(err)
			}
			if res.Detected() == 1 {
				missed++
				fmt.Printf("  fault %-14s signature %04x  -> ALIASED (detected at outputs, masked in MISR)\n", f, sig)
			} else {
				silent++
				fmt.Printf("  fault %-14s signature %04x  -> not excited by this test length\n", f, sig)
			}
		}
	}
	fmt.Printf("\n%d caught, %d aliased, %d unexcited\n", caught, missed, silent)
}

// signature runs the vector stream on the gate-level core (optionally
// with one injected fault) and compacts the 8-bit output into a 16-bit
// MISR.
func signature(gate *dspgate.Core, vecs fault.Vectors, f *fault.Fault) uint64 {
	sim := logic.NewSimulator(gate.Netlist)
	if f != nil {
		sim.InjectFault(f.Site, f.SA1)
	}
	m, err := lfsr.NewMISR(16)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vecs {
		sim.SetInputBus(gate.Instr, v)
		sim.Settle()
		m.Absorb(sim.BusValue(gate.Out))
		sim.Step()
	}
	return m.Signature()
}
