// Metrics tables: reproduce the paper's Table 1 (simple datapath) and a
// slice of Table 2 (DSP core), showing how the entropy-based
// controllability metric and the injection-based observability metric
// expose which instructions can test which components.
//
//	go run ./examples/metrics_table
package main

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/simpledsp"
)

func main() {
	fmt.Println("=== Table 1: simple datapath (Figure 1) ===")
	fmt.Println("cells are C/O; blank = instruction never exercises that ALU mode")
	tab1 := simpledsp.BuildTable(simpledsp.Config{CTrials: 8000, OGoodRuns: 60, Seed: 9})
	fmt.Println(tab1.Render())
	fmt.Println("note the paper's signature: Clr rows zero the multiplier's observability —")
	fmt.Println("the cleared ALU swallows any multiplier error.")

	fmt.Println("\n=== Table 2 slice: DSP core ===")
	eng := metrics.NewEngine(metrics.Config{CTrials: 40000, OGoodRuns: 20, Seed: 1})
	rows := []metrics.Row{
		{Name: "load", Op: isa.OpLdi, Acc: isa.AccA, State: metrics.AccZero},
		{Name: "loadR", Op: isa.OpLdi, Acc: isa.AccA, State: metrics.AccRandom},
		{Name: "mpy", Op: isa.OpMpy, Acc: isa.AccA, State: metrics.AccZero},
		{Name: "Mac+R", Op: isa.OpMacP, Acc: isa.AccA, State: metrics.AccRandom},
		{Name: "shiftR", Op: isa.OpShift, Acc: isa.AccA, State: metrics.AccRandom},
	}
	cols := metrics.StandardColumns()
	tab := &metrics.Table{
		Rows: rows, Cols: cols, Cells: make([][]metrics.Cell, len(rows)),
		CThreshold: 0.70, OThreshold: 0.50,
	}
	for i, r := range rows {
		fmt.Printf("measuring %s...\n", r.Name)
		tab.Cells[i] = eng.MeasureRow(r)
	}
	fmt.Println()
	fmt.Println(tab.Render())
	fmt.Println("read it like the paper does: 'load' gives the shifter pass-mode only")
	fmt.Println("C=0.18 (4 random amount bits over a 22-bit input) until the accumulator")
	fmt.Println("holds a random value, and no single instruction observes the accumulators")
	fmt.Println("(O=0.00) — that is exactly what Phase 2's SHIFT+OUT sequences fix.")
}
