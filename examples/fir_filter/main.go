// FIR filter: the functional workload the paper's introduction motivates
// — run an actual 4-tap FIR filter on the DSP core using its MAC
// instruction set, validate it against a reference model, and then show
// that the very same core and instruction set carry the self-test
// program. No test hardware beyond the LFSRs/MISR is ever added.
//
//	go run ./examples/fir_filter
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/dsp"
	"repro/internal/isa"
)

// Coefficients in 4.4 fixed point: a small low-pass kernel
// (0.25, 0.5, 0.5, 0.25).
var taps = []int8{0x04, 0x08, 0x08, 0x04}

// Register plan: R1..R4 hold the taps, R5..R8 the sample window
// (R5 newest), R10 the MAC result, R12 the input staging register.
const (
	regTap0 = 1
	regX0   = 5
	regY    = 10
	regIn   = 12
)

func main() {
	// Input: a step plus a sine burst, quantized to 4.4.
	var samples []int8
	for i := 0; i < 24; i++ {
		v := 2.0 * math.Sin(float64(i)*0.7)
		if i >= 12 {
			v += 1.5
		}
		samples = append(samples, int8(math.Round(v*16)))
	}

	core := dsp.New()
	run := func(prog []isa.Instr) {
		for _, in := range prog {
			core.StepInstr(in)
		}
	}

	// Load coefficients once.
	var setup []isa.Instr
	for k, h := range taps {
		setup = append(setup, isa.Instr{Op: isa.OpLdi, Imm: uint8(h), RD: uint8(regTap0 + k)})
	}
	setup = append(setup, nop(), nop(), nop())
	run(setup)

	fmt.Println("  n   x[n]    core y[n]   reference   |err|")
	maxErr := 0.0
	for n, x := range samples {
		run(samplePacket(x))
		got := fixToFloat(int8(core.Reg(regY)))
		want := reference(samples, n)
		err := math.Abs(got - want)
		if err > maxErr {
			maxErr = err
		}
		fmt.Printf("%3d  %6.3f   %9.4f   %9.4f   %.4f\n",
			n, fixToFloat(x), got, want, err)
	}
	// The core computes in 4.4 throughout, so the only error source is
	// the per-output quantization of the limiter (≤ 1/16 per tap sum).
	if maxErr > 0.25 {
		log.Fatalf("FIR output error %.4f too large", maxErr)
	}
	fmt.Printf("\nmax |error| = %.4f (4.4 quantization only) — the DSP core is a working FIR engine,\n", maxErr)
	fmt.Println("and the same MAC/SHIFT/LD/OUT instructions carry the self-test program")
	fmt.Println("(see examples/quickstart and examples/online_selftest).")
}

// samplePacket emits the straight-line instruction packet for one input
// sample: slide the window, inject the sample, and run the 4-tap MAC
// chain. NOPs respect the pipeline's exposed delay slot (a consumer must
// trail its producer by two instructions).
func samplePacket(x int8) []isa.Instr {
	var p []isa.Instr
	// Slide window oldest-first: R8←R7, R7←R6, R6←R5.
	for k := 3; k >= 1; k-- {
		p = append(p, isa.Instr{Op: isa.OpMov, Src: uint8(regX0 + k - 1), RD: uint8(regX0 + k)})
	}
	// Inject the new sample (via the staging register to show a
	// realistic input path; LD→MOV obeys the delay slot naturally).
	p = append(p,
		isa.Instr{Op: isa.OpLdi, Imm: uint8(x), RD: regIn},
		nop(),
		isa.Instr{Op: isa.OpMov, Src: regIn, RD: regX0},
		nop(), nop(),
	)
	// MAC chain: acc = h0·x0; acc += hk·xk; result register gets the
	// limited accumulator at each step — the last one is y[n].
	p = append(p, isa.Instr{Op: isa.OpMpy, Acc: isa.AccA, RA: regTap0, RB: regX0, RD: regY})
	for k := 1; k < len(taps); k++ {
		p = append(p, isa.Instr{
			Op: isa.OpMacP, Acc: isa.AccA,
			RA: uint8(regTap0 + k), RB: uint8(regX0 + k), RD: regY,
		})
	}
	// Drain so y[n] is architecturally visible before the next packet.
	p = append(p, nop(), nop(), nop())
	return p
}

func nop() isa.Instr { return isa.Instr{Op: isa.OpNop} }

// reference computes y[n] the way the core does: every partial product
// and accumulation in exact integer arithmetic on 4.4/8.8 values, with
// the final limiter quantization to 4.4.
func reference(samples []int8, n int) float64 {
	acc := 0 // 8.8
	for k := 0; k < len(taps); k++ {
		if n-k < 0 {
			continue
		}
		acc += int(taps[k]) * int(samples[n-k])
	}
	y := acc >> 4 // 8.8 → 4.4 (the limiter window)
	if y > 127 {
		y = 127
	}
	if y < -128 {
		y = -128
	}
	return float64(y) / 16
}

func fixToFloat(v int8) float64 { return float64(v) / 16 }
