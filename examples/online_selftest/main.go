// Online self-test: the in-field deployment the paper targets — a DSP
// core alternates between its functional workload (an FIR filter) and
// periodic self-test bursts whose MISR signature is checked against a
// golden value. Midway through, a permanent fault "develops" in the
// multiplier; the next burst catches it while the workload context
// survives every healthy burst untouched.
//
//	go run ./examples/online_selftest
package main

import (
	"fmt"
	"log"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/online"
	"repro/internal/selftest"
)

// breakableProbe models a fault that appears at some point in the
// field: once broken, the multiplier's output bit 9 sticks.
type breakableProbe struct{ broken bool }

func (p *breakableProbe) Observe(comp dsp.Component, mode int, value uint32) uint32 {
	if p.broken && comp == dsp.CompMultiplier {
		return value | 1<<9
	}
	return value
}

func main() {
	// Characterize the self-test burst once ("at the factory").
	eng := metrics.NewEngine(metrics.Config{CTrials: 8000, OGoodRuns: 6, Seed: 1})
	prog, _ := selftest.NewGenerator(eng).Generate()
	st, err := online.New(prog, online.Config{Iterations: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st)

	// Deploy: run workload chunks with a self-test burst between them.
	core := dsp.New()
	probe := &breakableProbe{}
	core.SetProbe(probe)

	sample := int8(0x10)
	for slot := 0; slot < 6; slot++ {
		if slot == 3 {
			probe.broken = true
			fmt.Println("  *** multiplier fault develops in the field ***")
		}
		// A chunk of functional work (one MAC, standing in for the FIR
		// inner loop of examples/fir_filter).
		core.StepInstr(isa.Instr{Op: isa.OpLdi, Imm: uint8(sample), RD: 1})
		core.Step(0)
		core.StepInstr(isa.Instr{Op: isa.OpMacP, Acc: isa.AccA, RA: 1, RB: 1, RD: 2})
		core.Step(0)
		core.Step(0)
		core.Step(0)
		workY := core.Reg(2)

		res, err := st.RunBurst(core)
		if err != nil {
			log.Fatal(err)
		}
		status := "PASS"
		if !res.Pass {
			status = "FAIL — core flagged faulty"
		}
		fmt.Printf("slot %d: workload y=%02x | self-test burst (%d cycles) signature %04x  %s\n",
			slot, workY, res.Cycles, res.Signature, status)
		if !res.Pass && !probe.broken {
			log.Fatal("false alarm on a healthy core")
		}
		if res.Pass && probe.broken {
			log.Fatal("burst missed the fault")
		}
	}
	fmt.Println("\nhealthy bursts never disturb the workload context; the first burst after")
	fmt.Println("the fault appears flags the core — with zero test access beyond the")
	fmt.Println("template LFSRs and the MISR of the paper's Figure 2.")
}
