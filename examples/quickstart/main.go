// Quickstart: generate a self-test program for the DSP core, expand it
// through the template architecture, fault-simulate the gate-level core
// and print the achieved stuck-at coverage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/metrics"
)

func main() {
	// 1. Measure instruction-level testability metrics and derive the
	//    self-test program (Phases 1–2). Small trial counts keep this
	//    example fast; see cmd/experiments for paper-scale settings.
	eng := metrics.NewEngine(metrics.Config{CTrials: 12000, OGoodRuns: 8, Seed: 1})
	gen := core.NewGenerator(eng)
	prog, report := gen.Generate()
	fmt.Printf("generated self-test loop (%d instructions):\n\n%s\n", prog.Len(), prog)
	fmt.Println(report.Summary())

	// 2. Expand the template: LFSR1 fills load immediates, LFSR2 rotates
	//    register fields each iteration.
	vecs := core.Expand(prog, core.ExpandOptions{Iterations: 500})
	fmt.Printf("expanded to %d test vectors\n", vecs.Len())

	// 3. Build the gate-level core and fault-simulate.
	gate, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
	if err != nil {
		log.Fatal(err)
	}
	st := gate.Netlist.Stats()
	fmt.Printf("gate-level core: %d gates, %d flip-flops, %d levels\n", st.Gates, st.DFFs, st.Levels)

	res, err := fault.Simulate(gate.Netlist, vecs, fault.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stuck-at fault coverage: %.2f%% (%d of %d collapsed faults)\n",
		100*res.Coverage(), res.Detected(), len(res.Faults))
	for _, region := range []string{"Multiplier", "Shifter", "AddSub", "RegFile"} {
		det, tot := res.RegionCoverage(gate.Netlist, region)
		fmt.Printf("  %-10s %5d faults  %6.2f%%\n", region, tot, 100*float64(det)/float64(tot))
	}
}
