// Custom core: apply the methodology's building blocks to your own
// datapath. This example uses the Figure-1 toy datapath: it builds the
// gate-level circuit, writes two candidate test schedules by hand —
// one that the Table-1 metrics endorse and one they warn against — and
// shows the fault-coverage gap the metrics predicted.
//
//	go run ./examples/custom_core
package main

import (
	"fmt"
	"log"

	"repro/internal/fault"
	"repro/internal/lfsr"
	"repro/internal/simpledsp"
)

func main() {
	// Metrics first: which instructions can test the multiplier?
	tab := simpledsp.BuildTable(simpledsp.Config{CTrials: 6000, OGoodRuns: 50, Seed: 9})
	fmt.Println(tab.Render())
	fmt.Println("Table 1 says Clr rows have Mult O=0.00: a Clr-heavy schedule cannot")
	fmt.Println("expose multiplier faults. Check that prediction at the gate level:")

	n, aBus, bBus, opBus, err := simpledsp.BuildGate()
	if err != nil {
		log.Fatal(err)
	}

	// Two schedules, equal length: mixed Add/Sub/Mac vs Clr-dominated.
	const cycles = 4096
	mixed := schedule(cycles, []simpledsp.Op{simpledsp.OpAdd, simpledsp.OpSub, simpledsp.OpMac})
	clrOnly := schedule(cycles, []simpledsp.Op{simpledsp.OpClr})

	for _, tc := range []struct {
		name string
		vecs fault.Vectors
	}{{"mixed Add/Sub/Mac", mixed}, {"Clr-only", clrOnly}} {
		res, err := fault.Simulate(n, tc.vecs, fault.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		mdet, mtot := res.RegionCoverage(n, "Mult")
		fmt.Printf("  %-18s overall %6.2f%%   multiplier %6.2f%% (%d/%d)\n",
			tc.name, 100*res.Coverage(), 100*float64(mdet)/float64(mtot), mdet, mtot)
	}
	fmt.Println("\nthe metric-endorsed schedule tests the multiplier; the Clr-only one")
	fmt.Println("leaves it dark — exactly what the O=0.00 cells predicted.")
	_ = aBus
	_ = bBus
	_ = opBus
}

// schedule builds a vector stream cycling through ops with pseudorandom
// operands. Input packing follows BuildGate: a[0:8], b[8:16], op[16:18].
func schedule(cycles int, ops []simpledsp.Op) fault.Vectors {
	l := lfsr.MustNew(16, 1)
	vecs := make(fault.Vectors, cycles)
	for i := range vecs {
		operands := l.NextBits(5)
		op := ops[i%len(ops)]
		vecs[i] = operands&0xFFFF | uint64(op)<<16
	}
	return vecs
}
