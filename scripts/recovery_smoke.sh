#!/bin/sh
# recovery_smoke.sh — kill -9 crash-recovery smoke for sbstd.
#
# Starts a journaled coordinator, submits a matrix campaign, SIGKILLs
# the process mid-run (no drain, no final checkpoint), restarts it on
# the same state directory, and asserts:
#
#   * the write-ahead journal captured the in-flight campaign (the file
#     is non-empty at the moment of the kill),
#   * the restarted process reports the recovery and serves the SAME
#     job for a retried submit_id instead of double-running it,
#   * the recovered campaign's result is bit-identical (modulo wall
#     time) to an uninterrupted oracle run of the same spec.
#
# Usage: scripts/recovery_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."
PORT="${1:-8323}"
BASE="http://127.0.0.1:$PORT"
DIR="$(mktemp -d)"
SBSTD_PID=""
cleanup() {
	[ -n "$SBSTD_PID" ] && kill -9 "$SBSTD_PID" 2>/dev/null
	rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/sbstd" ./cmd/sbstd

# The campaign is deterministic: every cell is seeded pseudorandom
# stimulus over a registry design, so two runs — interrupted or not —
# must serve identical fault counts, detections and cycle totals.
SPEC='{"kind":"campaign_matrix","submit_id":"smoke/recovery-1","matrix":{
  "designs":["dsp","bench/s27","fam/w6r4s1l1p2"],
  "schemes":[{"kind":"bist","count":2048,"seed":7},{"kind":"bist","count":1024,"seed":9}]}}'

start_coordinator() {
	"$DIR/sbstd" -addr "127.0.0.1:$PORT" -queue-workers 1 \
		-journal "$DIR/$1/journal.wal" -checkpoint "$DIR/$1/ckpt.json" \
		>>"$DIR/$1.log" 2>&1 &
	SBSTD_PID=$!
	for i in $(seq 1 100); do
		curl -sf "$BASE/v1/healthz" >/dev/null && return 0
		sleep 0.1
	done
	echo "coordinator never became healthy"; cat "$DIR/$1.log"; exit 1
}

wait_completed() {
	state=unknown
	for i in $(seq 1 240); do
		state=$(curl -sf "$BASE/v1/jobs/job-0001" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
		[ "$state" = completed ] && return 0
		[ "$state" = failed ] && break
		sleep 0.5
	done
	echo "job ended in state: $state"; cat "$DIR/$1.log"; exit 1
}

# Results carry one volatile field — wall-clock seconds; everything
# else (faults, detected, cycles, coverage, per-cell rollup) must match
# bit-for-bit.
stable_result() {
	curl -sf "$BASE/v1/jobs/job-0001/result" | grep -v '"seconds"'
}

# --- Oracle: the same campaign, uninterrupted. -----------------------
mkdir -p "$DIR/oracle"
start_coordinator oracle
curl -sf "$BASE/v1/jobs" -d "$SPEC" >/dev/null
wait_completed oracle
stable_result >"$DIR/want.json"
kill -TERM "$SBSTD_PID" && wait "$SBSTD_PID"
SBSTD_PID=""

# --- Crash run: SIGKILL mid-campaign, restart, recover. --------------
mkdir -p "$DIR/crash"
start_coordinator crash
curl -sf "$BASE/v1/jobs" -d "$SPEC" >/dev/null
for i in $(seq 1 200); do
	state=$(curl -sf "$BASE/v1/jobs/job-0001" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
	[ "$state" = running ] && break
	[ "$state" = completed ] && { echo "campaign finished before the kill; grow the spec"; exit 1; }
	sleep 0.05
done
[ "$state" = running ] || { echo "campaign never started running"; cat "$DIR/crash.log"; exit 1; }
kill -9 "$SBSTD_PID"
wait "$SBSTD_PID" 2>/dev/null || true
SBSTD_PID=""
test -s "$DIR/crash/journal.wal" || { echo "journal empty at the kill"; exit 1; }

start_coordinator crash
grep -q "sbstd: recovered" "$DIR/crash.log" || { echo "no recovery line"; cat "$DIR/crash.log"; exit 1; }
# A client retrying its acked submit must get the original job back.
DUP=$(curl -sf "$BASE/v1/jobs" -d "$SPEC" | sed -n 's/.*"id": "\([a-z0-9-]*\)".*/\1/p')
[ "$DUP" = job-0001 ] || { echo "retried submit created $DUP, want job-0001"; exit 1; }
wait_completed crash
stable_result >"$DIR/got.json"

diff -u "$DIR/want.json" "$DIR/got.json" || {
	echo "recovered result diverged from the uninterrupted oracle"; exit 1; }
echo "recovery smoke passed: recovered result is bit-identical to the oracle"
