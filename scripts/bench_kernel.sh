#!/bin/sh
# bench_kernel.sh — run the fault-simulation kernel benchmarks and emit
# BENCH_3.json: ns/op + gate-evals/cycle (+ coverage, vectors/s) for the
# serial reference kernel (pre-PR-3 WordSim full sweep), the serial
# compiled event-driven kernel, and the sharded engine on the compiled
# kernel. The workload is the Table-1-scale campaign in
# internal/engine/bench_test.go: the full collapsed dspgate fault list
# (fanout branches inserted) against 8192 LFSR vectors.
#
# Usage: scripts/bench_kernel.sh [benchtime] [outfile]
#   benchtime  go test -benchtime value (default 3x)
#   outfile    output path (default BENCH_3.json at the repo root)
#
# The acceptance bar (ISSUE 3) is serial_compiled ≥ 3× faster than
# serial_reference; "speedup" records the measured ratio.
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-3x}"
OUT="${2:-BENCH_3.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run xxx -bench 'SimulateKernels|SimulateSharded' \
	-benchtime "$BENCHTIME" -timeout 60m ./internal/engine | tee "$RAW"

awk -v out="$OUT" -v benchtime="$BENCHTIME" '
function record(key) {
	ns[key] = $3
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "coverage%")        cov[key] = $i
		if ($(i+1) == "gate-evals/cycle") evals[key] = $i
		if ($(i+1) == "vectors/s")        vps[key] = $i
	}
}
function entry(key,   s) {
	s = sprintf("{\"ns_per_op\": %.0f, \"gate_evals_per_cycle\": %.0f, \"coverage_pct\": %.2f, \"vectors_per_sec\": %.0f}",
		ns[key], evals[key], cov[key], vps[key])
	return s
}
/^BenchmarkSimulateKernels\/reference/ { record("reference") }
/^BenchmarkSimulateKernels\/compiled/  { record("compiled") }
/^BenchmarkSimulateSharded\/workers/ {
	# Keep the best (lowest ns/op) worker count — on a single-core
	# runner the extra shards only add goroutine overhead.
	split($1, parts, "=")
	split(parts[2], w, "-")
	if (!("sharded" in ns) || $3 + 0 < ns["sharded"] + 0) {
		record("sharded"); workers["sharded"] = w[1]
	}
}
END {
	if (!("reference" in ns) || !("compiled" in ns)) {
		print "bench_kernel.sh: missing benchmark rows" > "/dev/stderr"
		exit 1
	}
	printf "{\n" > out
	printf "  \"issue\": 3,\n" >> out
	printf "  \"benchmark\": \"BenchmarkSimulateKernels + BenchmarkSimulateSharded (internal/engine)\",\n" >> out
	printf "  \"benchtime\": \"%s\",\n", benchtime >> out
	printf "  \"workload\": \"dspgate (fanout branches), full collapsed fault list, 8192 LFSR vectors\",\n" >> out
	printf "  \"kernels\": {\n" >> out
	printf "    \"serial_reference\": %s,\n", entry("reference") >> out
	printf "    \"serial_compiled\": %s", entry("compiled") >> out
	if ("sharded" in ns) {
		printf ",\n    \"sharded_compiled\": {\"workers\": %d, \"ns_per_op\": %.0f, \"gate_evals_per_cycle\": %.0f, \"coverage_pct\": %.2f, \"vectors_per_sec\": %.0f}\n",
			workers["sharded"], ns["sharded"], evals["sharded"], cov["sharded"], vps["sharded"] >> out
	} else {
		printf "\n" >> out
	}
	printf "  },\n" >> out
	printf "  \"speedup_compiled_vs_reference\": %.2f\n", ns["reference"] / ns["compiled"] >> out
	printf "}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
cat "$OUT"
