#!/bin/sh
# bench_kernel.sh — run the fault-simulation kernel benchmarks and emit
# BENCH_4.json: the serial reference vs compiled kernels, the compiled
# kernel's bitslice lane-width sweep (fault.SimOptions.LaneWords), and
# the artifact-cache cold/warm pair. The workload is the Table-1-scale
# campaign in internal/engine/bench_test.go: the full collapsed dspgate
# fault list (fanout branches inserted) against 8192 LFSR vectors.
#
# Every entry is self-describing: lane words, the compile-time cache
# block size (logic.BlockSlots), and the artifact-cache state it ran
# under — "off" (no store consulted), "cold" (fresh store per run, pays
# compile + good-machine prefill) or "warm" (primed store, zero
# compiles and zero good-machine cycles).
#
# Usage: scripts/bench_kernel.sh [benchtime] [outfile]
#   benchtime  go test -benchtime value (default 3x)
#   outfile    output path (default BENCH_4.json at the repo root)
#
# The acceptance bar (ISSUE 8) is ≥ 2× vectors/s over BENCH_3's
# serial_compiled (≥ 8000 vectors/s) at the best entry, with
# coverage_pct bit-identical across every lane width; "speedup_*"
# record the measured ratios. BENCH_3.json's serial_compiled is read
# from the committed file when present.
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-3x}"
OUT="${2:-BENCH_4.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

BLOCK_SLOTS="$(sed -n 's/.*BlockSlots = \([0-9]*\).*/\1/p' internal/logic/compile.go | head -1)"
BENCH3_VPS="$(sed -n 's/.*"serial_compiled".*"vectors_per_sec": \([0-9]*\).*/\1/p' BENCH_3.json 2>/dev/null | head -1)"

go test -run xxx -bench 'SimulateKernels|SimulateLanes|SimulateArtifacts' \
	-benchtime "$BENCHTIME" -timeout 60m ./internal/engine | tee "$RAW"

awk -v out="$OUT" -v benchtime="$BENCHTIME" \
	-v blockslots="${BLOCK_SLOTS:-0}" -v bench3="${BENCH3_VPS:-0}" '
function record(key) {
	ns[key] = $3
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "coverage%")        cov[key] = $i
		if ($(i+1) == "gate-evals/cycle") evals[key] = $i
		if ($(i+1) == "lane-words")       lanes[key] = $i
		if ($(i+1) == "vectors/s")        vps[key] = $i
	}
	keys[nk++] = key
}
function entry(key,   s) {
	s = sprintf("{\"lane_words\": %d, \"block_slots\": %d, \"artifact_cache\": \"%s\", \"ns_per_op\": %.0f, \"coverage_pct\": %.2f, \"vectors_per_sec\": %.0f",
		lanes[key] + 0 > 0 ? lanes[key] : 1, blockslots, state[key], ns[key], cov[key], vps[key])
	if (key in evals)
		s = s sprintf(", \"gate_evals_per_cycle\": %.0f", evals[key])
	return s "}"
}
/^BenchmarkSimulateKernels\/reference/ { record("reference"); state["reference"] = "off" }
/^BenchmarkSimulateKernels\/compiled/  { record("compiled");  state["compiled"] = "off" }
/^BenchmarkSimulateLanes\/w=/ {
	split($1, parts, "=")
	split(parts[2], w, "-")
	key = "lanes_w" w[1]
	record(key); state[key] = "off"
	lanesweep[nl++] = key
}
/^BenchmarkSimulateArtifacts\/cold/ { record("art_cold"); state["art_cold"] = "cold" }
/^BenchmarkSimulateArtifacts\/warm/ { record("art_warm"); state["art_warm"] = "warm" }
END {
	if (!("reference" in ns) || !("compiled" in ns) || nl == 0 || !("art_warm" in ns)) {
		print "bench_kernel.sh: missing benchmark rows" > "/dev/stderr"
		exit 1
	}
	# Coverage must be bit-identical everywhere the compiled kernel ran
	# (the lane sweep already self-asserts; re-check across suites).
	for (i = 0; i < nk; i++) {
		k = keys[i]
		if (k != "reference" && cov[k] != cov["compiled"]) {
			printf "bench_kernel.sh: coverage diverges: %s=%.2f vs compiled=%.2f\n",
				k, cov[k], cov["compiled"] > "/dev/stderr"
			exit 1
		}
	}
	best = "compiled"
	for (i = 0; i < nk; i++) {
		k = keys[i]
		if (k != "reference" && vps[k] + 0 > vps[best] + 0) best = k
	}
	printf "{\n" > out
	printf "  \"issue\": 8,\n" >> out
	printf "  \"benchmark\": \"BenchmarkSimulateKernels + BenchmarkSimulateLanes + BenchmarkSimulateArtifacts (internal/engine)\",\n" >> out
	printf "  \"benchtime\": \"%s\",\n", benchtime >> out
	printf "  \"workload\": \"dspgate (fanout branches), full collapsed fault list, 8192 LFSR vectors\",\n" >> out
	printf "  \"kernels\": {\n" >> out
	printf "    \"serial_reference\": %s,\n", entry("reference") >> out
	printf "    \"serial_compiled\": %s\n", entry("compiled") >> out
	printf "  },\n" >> out
	printf "  \"lane_sweep\": [\n" >> out
	for (i = 0; i < nl; i++)
		printf "    %s%s\n", entry(lanesweep[i]), i < nl - 1 ? "," : "" >> out
	printf "  ],\n" >> out
	printf "  \"artifact_cache\": {\n" >> out
	printf "    \"cold\": %s,\n", entry("art_cold") >> out
	printf "    \"warm\": %s\n", entry("art_warm") >> out
	printf "  },\n" >> out
	printf "  \"best\": %s,\n", entry(best) >> out
	if (bench3 + 0 > 0) {
		printf "  \"bench3_serial_compiled_vectors_per_sec\": %d,\n", bench3 >> out
		printf "  \"speedup_best_vs_bench3_serial_compiled\": %.2f,\n", vps[best] / bench3 >> out
	}
	printf "  \"speedup_best_vs_serial_compiled\": %.2f,\n", vps[best] / vps["compiled"] >> out
	printf "  \"speedup_best_vs_serial_reference\": %.2f\n", vps[best] / vps["reference"] >> out
	printf "}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
cat "$OUT"
