package repro

import (
	"testing"

	"repro/internal/bist"
	"repro/internal/dspgate"
	"repro/internal/fault"
)

// TestKernelEquivalenceFullCore pins the PR-3 acceptance criterion: the
// compiled event-driven kernel must produce a bit-identical fault.Result
// (DetectedAt, Detections, Coverage) to the reference WordSim kernel on
// the full dspgate core fault list, for both netlist variants (with and
// without fanout branches — Q-site and branch-site faults exercise the
// injection-reapply path). The kernels run with their own default
// segmentation (the compiled kernel's adaptive schedule vs the reference
// fixed segments), so this also pins segment-length invariance.
func TestKernelEquivalenceFullCore(t *testing.T) {
	vectors := 2048
	if testing.Short() {
		vectors = 512
	}
	for _, fb := range []bool{false, true} {
		core, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: fb})
		if err != nil {
			t.Fatal(err)
		}
		n := core.Netlist
		faults, _ := fault.Collapse(n, fault.AllFaults(n))
		vecs := bist.PseudorandomVectors(vectors, 1)
		ref, err := fault.Simulate(n, vecs, fault.SimOptions{
			Faults: faults, NDetect: 3, Kernel: fault.KernelReference,
		})
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := fault.Simulate(n, vecs, fault.SimOptions{
			Faults: faults, NDetect: 3, Kernel: fault.KernelCompiled,
		})
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		for i := range faults {
			if ref.DetectedAt[i] != cmp.DetectedAt[i] || ref.Detections[i] != cmp.Detections[i] {
				if bad < 8 {
					t.Errorf("fb=%v fault %d site=%d sa1=%v: ref cycle=%d n=%d, compiled cycle=%d n=%d",
						fb, i, faults[i].Site, faults[i].SA1,
						ref.DetectedAt[i], ref.Detections[i],
						cmp.DetectedAt[i], cmp.Detections[i])
				}
				bad++
			}
		}
		if bad > 0 {
			t.Fatalf("fb=%v: %d/%d faults differ between kernels", fb, bad, len(faults))
		}
		if rc, cc := ref.Coverage(), cmp.Coverage(); rc != cc {
			t.Fatalf("fb=%v: coverage differs: reference %.6f, compiled %.6f", fb, rc, cc)
		}
		t.Logf("fb=%v: %d faults, coverage %.2f%%, kernels bit-identical", fb, len(faults), ref.Coverage()*100)
	}
}
