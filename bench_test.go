// Package repro's root benchmarks regenerate each paper artifact at a
// benchmark-friendly scale and report the headline quality metric
// (coverage, program length) through b.ReportMetric alongside timing.
// The full paper-scale runs live in cmd/experiments.
package repro

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bist"
	"repro/internal/dspgate"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/selftest"
	"repro/internal/simpledsp"
)

var (
	fixOnce sync.Once
	fixCore *dspgate.Core
	fixProg *selftest.Program
	fixRep  *selftest.Report
)

func fixtures(b *testing.B) (*dspgate.Core, *selftest.Program, *selftest.Report) {
	b.Helper()
	fixOnce.Do(func() {
		c, err := dspgate.Build(dspgate.Options{InsertFanoutBranches: true})
		if err != nil {
			panic(err)
		}
		fixCore = c
		eng := metrics.NewEngine(metrics.Config{CTrials: 12000, OGoodRuns: 8, Seed: 33})
		gen := selftest.NewGenerator(eng)
		fixProg, fixRep = gen.Generate()
	})
	return fixCore, fixProg, fixRep
}

// BenchmarkTable1Metrics regenerates the paper's Table 1 (E1).
func BenchmarkTable1Metrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := simpledsp.BuildTable(simpledsp.Config{CTrials: 2000, OGoodRuns: 20, Seed: 9})
		if len(tab.Rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2MetricsRow measures one Table 2 row (E2; the full
// 24-row table is the same work ×24).
func BenchmarkTable2MetricsRow(b *testing.B) {
	eng := metrics.NewEngine(metrics.Config{CTrials: 2000, OGoodRuns: 4, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := eng.MeasureRow(metrics.Row{Op: isa.OpMacP, Acc: isa.AccA, State: metrics.AccRandom})
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkPhase1Cover runs the greedy covering pass over the metrics
// table (E3).
func BenchmarkPhase1Cover(b *testing.B) {
	_, _, rep := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1 := selftest.Phase1(rep.Table)
		if len(p1.Chosen) == 0 {
			b.Fatal("empty cover")
		}
	}
}

// BenchmarkProgramGeneration runs the full generation flow, metrics
// table included (E4 / Figure 7).
func BenchmarkProgramGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := metrics.NewEngine(metrics.Config{CTrials: 4000, OGoodRuns: 4, Seed: 33})
		prog, _ := selftest.NewGenerator(eng).Generate()
		b.ReportMetric(float64(prog.Len()), "instrs/loop")
	}
}

// BenchmarkFaultCoverageBase fault-simulates the base self-test program
// for a scaled-down iteration count (E5; paper scale is 6000 iterations).
func BenchmarkFaultCoverageBase(b *testing.B) {
	core, prog, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 100})
		res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage(), "%coverage")
		b.ReportMetric(float64(vecs.Len())/float64(b.Elapsed().Seconds()+1e-9)/1e6, "Mvec/s")
	}
}

// countingSink is the cheapest possible live sink: it measures the cost
// of event construction and fan-in, not of any particular backend.
type countingSink struct{ n atomic.Int64 }

func (s *countingSink) Emit(obs.Event) { s.n.Add(1) }

// BenchmarkFaultCoverageTraced is BenchmarkFaultCoverageBase with a
// live event sink attached. The Base benchmark above is the disabled
// path (nil Sink ⇒ the simulator skips event construction entirely);
// the delta between the two is the enabled-path instrumentation cost.
func BenchmarkFaultCoverageTraced(b *testing.B) {
	core, prog, _ := fixtures(b)
	sink := &countingSink{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 100})
		res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{Sink: sink})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage(), "%coverage")
	}
	if sink.n.Load() == 0 {
		b.Fatal("sink saw no events")
	}
}

// BenchmarkShifterConstraints runs one constrained-coverage analysis of
// the standalone shifter (E6 runs the paper's six sets).
func BenchmarkShifterConstraints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := selftest.ShifterConstraintStudy([]selftest.ConstraintSet{
			{Label: "ban 01", Modes: []uint8{0, 2, 3}},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[0].Coverage(), "%coverage")
	}
}

// BenchmarkEnhancedProgram expands and simulates the Phase-3
// frequency-boosted program (E7).
func BenchmarkEnhancedProgram(b *testing.B) {
	core, prog, _ := fixtures(b)
	boosted := selftest.Boost(prog, map[isa.Op]bool{isa.OpShift: true, isa.OpMacP: true}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecs := selftest.Expand(boosted, selftest.ExpandOptions{Iterations: 100})
		res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage(), "%coverage")
	}
}

// BenchmarkATPGBaseline runs the scaled sequential-ATPG baseline (E8).
func BenchmarkATPGBaseline(b *testing.B) {
	core, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bist.SequentialATPG(core.Netlist, 2, 200, 200, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage(), "%coverage")
	}
}

// BenchmarkPseudorandomBIST fault-simulates raw LFSR vectors (E9; paper
// scale is the full 131,071-vector period).
func BenchmarkPseudorandomBIST(b *testing.B) {
	core, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecs := bist.PseudorandomVectors(4096, 1)
		res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage(), "%coverage")
	}
}

// ---- Ablation benches (DESIGN.md "key design choices") ----

// BenchmarkSegmentLength sweeps the fault simulator's drop/repack
// segment length.
func BenchmarkSegmentLength(b *testing.B) {
	core, prog, _ := fixtures(b)
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 60})
	for _, seg := range []int{64, 256, 1024, 4096} {
		b.Run(segName(seg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{SegmentLen: seg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func segName(seg int) string {
	switch seg {
	case 64:
		return "seg64"
	case 256:
		return "seg256"
	case 1024:
		return "seg1024"
	default:
		return "seg4096"
	}
}

// BenchmarkFaultCollapseAblation compares simulating the collapsed list
// against the raw uncollapsed list.
func BenchmarkFaultCollapseAblation(b *testing.B) {
	core, prog, _ := fixtures(b)
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 40})
	all := fault.AllFaults(core.Netlist)
	collapsed, _ := fault.Collapse(core.Netlist, all)
	b.Run("collapsed", func(b *testing.B) {
		b.ReportMetric(float64(len(collapsed)), "faults")
		for i := 0; i < b.N; i++ {
			if _, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{Faults: collapsed}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncollapsed", func(b *testing.B) {
		b.ReportMetric(float64(len(all)), "faults")
		for i := 0; i < b.N; i++ {
			if _, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{Faults: all}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRegMaskAblation compares coverage with and without the LFSR2
// register-field rotation at equal vector counts (the template
// architecture's register-group trick).
func BenchmarkRegMaskAblation(b *testing.B) {
	core, prog, _ := fixtures(b)
	for _, disable := range []bool{false, true} {
		name := "masked"
		if disable {
			name = "unmasked"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 100, DisableRegMask: disable})
				res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{})
				if err != nil {
					b.Fatal(err)
				}
				det, tot := res.RegionCoverage(core.Netlist, "RegFile")
				b.ReportMetric(100*float64(det)/float64(tot), "%regfile")
				b.ReportMetric(100*res.Coverage(), "%coverage")
			}
		})
	}
}

// BenchmarkWordSim measures the raw word-parallel simulation rate of the
// gate-level core (the fault simulator's inner loop).
func BenchmarkWordSim(b *testing.B) {
	core, _, _ := fixtures(b)
	w := logic.NewWordSim(core.Netlist)
	vecs := bist.PseudorandomVectors(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vecs {
			for bit, in := range core.Netlist.Inputs() {
				w.SetInput(in, v>>uint(bit)&1 == 1)
			}
			w.Step()
		}
	}
	b.ReportMetric(float64(256*core.Netlist.NumGates())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mgate-evals/s")
}

// BenchmarkIRST fault-simulates the instruction-randomization baseline
// (E10).
func BenchmarkIRST(b *testing.B) {
	core, _, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecs := bist.IRSTVectors(bist.IRSTOptions{Vectors: 4096, Seed: 1, OutEvery: 6})
		res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage(), "%coverage")
	}
}

// BenchmarkDiagnose measures cause-effect diagnosis of one failing run.
func BenchmarkDiagnose(b *testing.B) {
	core, prog, _ := fixtures(b)
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 20})
	faults, _ := fault.Collapse(core.Netlist, fault.AllFaults(core.Netlist))
	observed := fault.FaultTrace(core.Netlist, vecs, faults[123])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := fault.Diagnose(core.Netlist, vecs, observed, faults)
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkNDetect measures the n-detect quality metric on the base
// program.
func BenchmarkNDetect(b *testing.B) {
	core, prog, _ := fixtures(b)
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 50})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fault.Simulate(core.Netlist, vecs, fault.SimOptions{NDetect: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.NDetectCoverage(5), "%5detect")
	}
}

// BenchmarkBridges measures sampled bridging-fault coverage of the base
// program (serial simulation).
func BenchmarkBridges(b *testing.B) {
	core, prog, _ := fixtures(b)
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 5})
	bridges := fault.RandomBridges(core.Netlist, 20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, tot := fault.BridgeCoverage(core.Netlist, vecs, bridges)
		b.ReportMetric(100*float64(det)/float64(tot), "%coverage")
	}
}

// BenchmarkTransitionFaults measures at-speed transition-fault
// simulation of the base program (E12).
func BenchmarkTransitionFaults(b *testing.B) {
	core, prog, _ := fixtures(b)
	vecs := selftest.Expand(prog, selftest.ExpandOptions{Iterations: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fault.SimulateTransitions(core.Netlist, vecs, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Coverage(), "%coverage")
	}
}

// BenchmarkPODEM measures test generation rate on the core's
// combinational frame under the full-scan bound.
func BenchmarkPODEM(b *testing.B) {
	core, _, _ := fixtures(b)
	n := core.Netlist
	scanPIs := append(append([]logic.NetID(nil), n.Inputs()...), n.DFFs()...)
	faults, _ := fault.Collapse(n, fault.AllFaults(n))
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		f := faults[i%len(faults)]
		atpg.Generate(n, f, atpg.Options{PIs: scanPIs, MaxBacktracks: 200})
		done++
	}
	_ = done
}
